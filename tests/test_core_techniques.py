"""Tests for the Figure-1 announcement behaviour of each technique."""

import pytest

from repro.core.techniques import (
    TECHNIQUES,
    Anycast,
    Combined,
    ProactivePrepending,
    ProactiveSuperprefix,
    ReactiveAnycast,
    ShedDns,
    ShedPrepend,
    ShedWithdraw,
    Technique,
    Unicast,
    technique_by_name,
)
from repro.topology.testbed import SPECIFIC_PREFIX, SUPERPREFIX

from tests.conftest import FAST_TIMING


@pytest.fixture()
def setup(deployment):
    net = deployment.topology.build_network(seed=2, timing=FAST_TIMING)
    return deployment, net


def originated(net, deployment, site):
    return set(net.router(deployment.site_node(site)).originated_prefixes())


def deploy(technique: Technique, deployment, net, site="sea1"):
    technique.announce_normal(net, deployment, site, SPECIFIC_PREFIX, SUPERPREFIX)
    net.converge()


class TestNormalOperationAnnouncements:
    """Each row of Figure 1, 'before specific site fails' column."""

    def test_unicast(self, setup):
        dep, net = setup
        deploy(Unicast(), dep, net)
        assert originated(net, dep, "sea1") == {SPECIFIC_PREFIX}
        assert originated(net, dep, "ams") == set()

    def test_anycast(self, setup):
        dep, net = setup
        deploy(Anycast(), dep, net)
        for site in dep.site_names:
            assert originated(net, dep, site) == {SPECIFIC_PREFIX}

    def test_proactive_superprefix(self, setup):
        dep, net = setup
        deploy(ProactiveSuperprefix(), dep, net)
        assert originated(net, dep, "sea1") == {SPECIFIC_PREFIX, SUPERPREFIX}
        assert originated(net, dep, "ams") == {SUPERPREFIX}

    def test_reactive_anycast_before_failure(self, setup):
        dep, net = setup
        deploy(ReactiveAnycast(), dep, net)
        assert originated(net, dep, "sea1") == {SPECIFIC_PREFIX}
        assert originated(net, dep, "ams") == set()

    def test_proactive_prepending(self, setup):
        dep, net = setup
        deploy(ProactivePrepending(3), dep, net)
        specific = net.router(dep.site_node("sea1"))
        assert specific.origin_config(SPECIFIC_PREFIX).prepend == 0
        other = net.router(dep.site_node("ams"))
        assert other.origin_config(SPECIFIC_PREFIX).prepend == 3

    def test_combined(self, setup):
        dep, net = setup
        deploy(Combined(), dep, net)
        assert originated(net, dep, "sea1") == {SPECIFIC_PREFIX, SUPERPREFIX}
        assert originated(net, dep, "ams") == {SUPERPREFIX}


class TestFailureReactions:
    """'After specific site fails' column of Figure 1."""

    def run_failure(self, technique, dep, net, site="sea1"):
        deploy(technique, dep, net, site)
        net.withdraw_all(dep.site_node(site))
        technique.on_failure(net, dep, site, SPECIFIC_PREFIX, SUPERPREFIX)
        net.converge()

    def test_reactive_anycast_announces_everywhere(self, setup):
        dep, net = setup
        self.run_failure(ReactiveAnycast(), dep, net)
        assert originated(net, dep, "sea1") == set()
        for site in dep.site_names:
            if site != "sea1":
                assert SPECIFIC_PREFIX in originated(net, dep, site)

    def test_passive_techniques_do_nothing_new(self, setup):
        dep, net = setup
        for technique in (Unicast(), Anycast(), ProactiveSuperprefix(), ProactivePrepending(3)):
            technique.on_failure(net, dep, "sea1", SPECIFIC_PREFIX, SUPERPREFIX)
        assert originated(net, dep, "ams") == set()

    def test_combined_announces_specific_after_failure(self, setup):
        dep, net = setup
        self.run_failure(Combined(), dep, net)
        assert originated(net, dep, "ams") == {SUPERPREFIX, SPECIFIC_PREFIX}


class TestPrependedScopeRestriction:
    def test_restricted_announcement_scope(self, setup):
        """With the §4 refinement on, other sites export the prepended
        route only to neighbors shared with the specific site."""
        dep, net = setup
        technique = ProactivePrepending(3, restrict_to_shared_neighbors=True)
        deploy(technique, dep, net, "sea1")
        sea1_neighbors = set(net.neighbors(dep.site_node("sea1")))
        for site in dep.site_names:
            if site == "sea1":
                continue
            config = net.router(dep.site_node(site)).origin_config(SPECIFIC_PREFIX)
            assert config.neighbors is not None
            assert config.neighbors <= sea1_neighbors


class TestTable2Attributes:
    def test_tradeoff_matrix_matches_paper(self):
        expected = {
            "proactive-prepending": ("medium", "high", "low"),
            "reactive-anycast": ("high", "high", "high"),
            "proactive-superprefix": ("high", "medium", "low"),
            "anycast": ("low", "high", "low"),
            "unicast": ("high", "low", "low"),
        }
        for name, (control, availability, risk) in expected.items():
            technique = technique_by_name(name)
            assert technique.tradeoff.control == control, name
            assert technique.tradeoff.availability == availability, name
            assert technique.tradeoff.risk == risk, name

    def test_full_control_flags(self):
        assert Unicast().full_control
        assert ReactiveAnycast().full_control
        assert ProactiveSuperprefix().full_control
        assert not Anycast().full_control
        assert not ProactivePrepending(3).full_control

    def test_anycast_selection_mode(self):
        assert Anycast().selection_mode == "anycast-catchment"
        assert Unicast().selection_mode == "beyond-anycast"


class TestShedTechniques:
    """The load-shedding family: announcement shape and overload hooks."""

    def fresh_net(self, deployment):
        return deployment.topology.build_network(seed=2, timing=FAST_TIMING)

    @pytest.mark.parametrize("factory", [ShedPrepend, ShedWithdraw, ShedDns])
    def test_base_plus_specific_matches_normal(self, deployment, factory):
        """Checkpoint forking replays announce_base then announce_specific;
        the decomposition must reproduce announce_normal exactly."""
        technique = factory()
        normal = self.fresh_net(deployment)
        technique.announce_normal(
            normal, deployment, "sea1", SPECIFIC_PREFIX, SUPERPREFIX
        )
        forked = self.fresh_net(deployment)
        technique.announce_base(forked, deployment, SPECIFIC_PREFIX, SUPERPREFIX)
        technique.announce_specific(
            forked, deployment, "sea1", SPECIFIC_PREFIX, SUPERPREFIX
        )
        for site in deployment.site_names:
            assert originated(normal, deployment, site) == originated(
                forked, deployment, site
            ), site

    def test_shed_prepend_reoriginates_with_prepend(self, setup):
        dep, net = setup
        technique = ShedPrepend(prepend=4)
        deploy(technique, dep, net)
        technique.on_overload(net, dep, "msn", SPECIFIC_PREFIX, SUPERPREFIX)
        assert net.router(dep.site_node("msn")).origin_config(SPECIFIC_PREFIX).prepend == 4
        technique.on_overload_cleared(net, dep, "msn", SPECIFIC_PREFIX, SUPERPREFIX)
        assert net.router(dep.site_node("msn")).origin_config(SPECIFIC_PREFIX).prepend == 0

    def test_shed_withdraw_pulls_specific_keeps_cover(self, setup):
        dep, net = setup
        technique = ShedWithdraw()
        deploy(technique, dep, net)
        assert originated(net, dep, "msn") == {SPECIFIC_PREFIX, SUPERPREFIX}
        technique.on_overload(net, dep, "msn", SPECIFIC_PREFIX, SUPERPREFIX)
        assert originated(net, dep, "msn") == {SUPERPREFIX}
        technique.on_overload_cleared(net, dep, "msn", SPECIFIC_PREFIX, SUPERPREFIX)
        assert originated(net, dep, "msn") == {SPECIFIC_PREFIX, SUPERPREFIX}

    def test_shed_dns_fraction_and_nudge(self, setup):
        dep, net = setup
        technique = ShedDns(fraction=0.4, prepend=1)
        assert technique.shed_dns_fraction == 0.4
        deploy(technique, dep, net)
        technique.on_overload(net, dep, "msn", SPECIFIC_PREFIX, SUPERPREFIX)
        assert net.router(dep.site_node("msn")).origin_config(SPECIFIC_PREFIX).prepend == 1

    def test_passive_techniques_have_inert_overload_hooks(self, setup):
        dep, net = setup
        deploy(Anycast(), dep, net)
        before = originated(net, dep, "msn")
        Anycast().on_overload(net, dep, "msn", SPECIFIC_PREFIX, SUPERPREFIX)
        assert originated(net, dep, "msn") == before

    def test_validation(self):
        with pytest.raises(ValueError):
            ShedPrepend(0)
        with pytest.raises(ValueError):
            ShedDns(fraction=0.0)
        with pytest.raises(ValueError):
            ShedDns(fraction=1.5)


class TestFactory:
    def test_all_registered(self):
        assert set(TECHNIQUES) == {
            "unicast", "anycast", "proactive-superprefix",
            "reactive-anycast", "proactive-prepending", "proactive-med",
            "combined", "shed-prepend", "shed-withdraw", "shed-dns",
        }

    def test_by_name_with_kwargs(self):
        technique = technique_by_name("proactive-prepending", prepend=5)
        assert technique.name == "proactive-prepending-5"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            technique_by_name("dns-only")

    def test_prepend_validation(self):
        with pytest.raises(ValueError):
            ProactivePrepending(0)
