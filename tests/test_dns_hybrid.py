"""Tests for the hybrid anycast/unicast mapping policy."""

import pytest

from repro.dns.hybrid import HybridMapping, build_steering_plan
from repro.measurement.performance import ClientPerformance, PerformanceReport
from repro.net.addr import IPv4Address

ANYCAST = IPv4Address.parse("184.164.244.1")
SEA1 = IPv4Address.parse("184.164.244.10")
AMS = IPv4Address.parse("184.164.244.20")


def make_mapping(steering=None) -> HybridMapping:
    return HybridMapping(ANYCAST, {"sea1": SEA1, "ams": AMS}, steering)


class TestHybridMapping:
    def test_default_is_anycast(self):
        mapping = make_mapping()
        assert mapping.address_for("anyone") == ANYCAST
        assert mapping.site_for("cdn.example", "anyone") == HybridMapping.ANYCAST

    def test_steered_client_gets_site_address(self):
        mapping = make_mapping({"client-1": "sea1"})
        assert mapping.address_for("client-1") == SEA1
        assert mapping.site_for("cdn.example", "client-1") == "sea1"

    def test_steer_and_unsteer(self):
        mapping = make_mapping()
        mapping.steer("c", "ams")
        assert mapping.address_for("c") == AMS
        mapping.unsteer("c")
        assert mapping.address_for("c") == ANYCAST

    def test_steer_unknown_site_rejected(self):
        with pytest.raises(KeyError):
            make_mapping().steer("c", "lhr")

    def test_address_for_stale_steering_rejected(self):
        mapping = make_mapping({"c": "gone"})
        with pytest.raises(KeyError):
            mapping.address_for("c")

    def test_steered_count(self):
        mapping = make_mapping({"a": "sea1", "b": "ams"})
        assert mapping.steered_count == 2


def perf(node, served, served_rtt, best, best_rtt) -> ClientPerformance:
    return ClientPerformance(
        node=node, served_by=served, served_rtt_ms=served_rtt,
        best_site=best, best_rtt_ms=best_rtt,
    )


class TestSteeringPlan:
    def report(self) -> PerformanceReport:
        return PerformanceReport(
            clients=[
                perf("good", "sea1", 10.0, "sea1", 10.0),       # optimal
                perf("mild", "ams", 14.0, "sea1", 10.0),        # +4ms: below threshold
                perf("bad", "ams", 30.0, "sea1", 10.0),         # +20ms
                perf("worse", "ams", 80.0, "sea1", 10.0),       # +70ms
            ]
        )

    def test_plan_selects_above_threshold(self):
        plan = build_steering_plan(self.report(), inflation_threshold_ms=5.0)
        assert [e.client for e in plan] == ["worse", "bad"]
        assert all(e.site == "sea1" for e in plan)

    def test_plan_ordered_worst_first(self):
        plan = build_steering_plan(self.report())
        inflations = [e.anycast_inflation_ms for e in plan]
        assert inflations == sorted(inflations, reverse=True)

    def test_max_clients_cap(self):
        plan = build_steering_plan(self.report(), max_clients=1)
        assert len(plan) == 1
        assert plan[0].client == "worse"

    def test_plan_applies_to_mapping(self):
        plan = build_steering_plan(self.report())
        mapping = make_mapping()
        for entry in plan:
            mapping.steer(entry.client, entry.site)
        assert mapping.address_for("worse") == SEA1
        assert mapping.address_for("good") == ANYCAST

    def test_end_to_end_on_deployment(self, deployment):
        """Steering the suboptimal anycast clients to their best sites
        strictly reduces the inflated fraction."""
        from repro.measurement.catchment import anycast_catchment
        from repro.measurement.performance import SiteRttTable, analyze_performance
        from tests.conftest import FAST_TIMING

        table = SiteRttTable(deployment.topology, deployment)
        catchment = anycast_catchment(
            deployment.topology, deployment, timing=FAST_TIMING
        )
        before = analyze_performance(deployment.topology, deployment, catchment, table)
        plan = build_steering_plan(before, inflation_threshold_ms=5.0)
        assert plan, "deployment should have steerable clients"
        steered = dict(catchment)
        for entry in plan:
            steered[entry.client] = entry.site
        after = analyze_performance(deployment.topology, deployment, steered, table)
        assert after.inflated_fraction(5.0) < before.inflated_fraction(5.0)
