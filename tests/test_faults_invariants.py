"""Tests for the post-convergence invariant checker."""

from repro.bgp.network import BgpNetwork
from repro.bgp.policy import Relationship
from repro.faults import check_invariants, known_prefixes
from repro.faults.invariants import (
    ADVERTISED_SYNC,
    FORWARDING_LOOP,
    RIB_FIB_COHERENCE,
)
from repro.net.addr import IPv4Prefix

from tests.conftest import FAST_TIMING, build_line_network

PFX = IPv4Prefix.parse("184.164.244.0/24")


def converged_line(n: int = 4) -> BgpNetwork:
    net = build_line_network(n)
    net.announce("r0", PFX)
    net.converge()
    return net


def invariants_of(report) -> set[str]:
    return {v.invariant for v in report.violations}


class TestCleanNetwork:
    def test_converged_network_holds_all_invariants(self):
        net = converged_line()
        report = check_invariants(net)
        assert report.ok
        assert report.prefixes_checked == 1
        assert report.sessions_checked > 0
        assert report.format_lines() == []

    def test_known_prefixes_covers_origins_and_loc_ribs(self):
        net = converged_line()
        assert known_prefixes(net) == [PFX]

    def test_mid_flap_network_settles_clean(self):
        """A network that flapped but re-converged must audit clean --
        this is the drill's post-settle check."""
        net = converged_line()
        net.fail_link("r1", "r2")
        net.converge()
        net.restore_link("r1", "r2")
        net.converge()
        assert check_invariants(net).ok

    def test_reset_session_settles_clean(self):
        net = converged_line()
        net.reset_session("r1", "r2")
        net.converge()
        assert check_invariants(net).ok


class TestForwardingLoop:
    def test_stable_loop_detected(self):
        net = converged_line(3)
        # Manufacture a stable two-node loop by hand-editing FIBs.
        net.router("r1").fib.insert(PFX, "r2")
        net.router("r2").fib.insert(PFX, "r1")
        report = check_invariants(net)
        assert FORWARDING_LOOP in invariants_of(report)
        loops = [v for v in report.violations if v.invariant == FORWARDING_LOOP]
        assert len(loops) == 1  # the cycle is reported once, not per entry

    def test_loop_detail_names_cycle(self):
        net = converged_line(2)
        net.router("r0").fib.insert(PFX, "r1")
        net.router("r1").fib.insert(PFX, "r0")
        report = check_invariants(net)
        loop = next(v for v in report.violations if v.invariant == FORWARDING_LOOP)
        assert "r0" in loop.detail and "r1" in loop.detail


class TestAdvertisedSync:
    def test_phantom_advertisement_detected(self):
        net = converged_line(3)
        extra = IPv4Prefix.parse("184.164.245.0/24")
        net.routers["r0"].sessions["r1"].advertised.add(extra)
        report = check_invariants(net)
        sync = [v for v in report.violations if v.invariant == ADVERTISED_SYNC]
        assert len(sync) == 1
        assert sync[0].node == "r0"
        assert str(extra) in sync[0].detail

    def test_unadvertised_peer_route_detected(self):
        net = converged_line(3)
        net.routers["r1"].sessions["r2"].advertised.discard(PFX)
        report = check_invariants(net)
        sync = [v for v in report.violations if v.invariant == ADVERTISED_SYNC]
        assert len(sync) == 1
        assert sync[0].node == "r1"

    def test_as_path_loop_rejection_is_allowed(self):
        """Two routers sharing an ASN (CDN sites): the peer rejects the
        announcement as an AS-path loop, so 'advertised but absent from
        the peer's Adj-RIB-In' is legitimate there."""
        net = BgpNetwork(seed=0, default_timing=FAST_TIMING)
        net.add_router("s1", 47065)
        net.add_router("s2", 47065)
        net.connect("s1", "s2", Relationship.PEER)
        net.announce("s1", PFX)
        net.converge()
        session = net.routers["s1"].sessions["s2"]
        assert PFX in session.advertised
        assert net.routers["s2"].adj_rib_in.route_from(PFX, "s1") is None
        assert check_invariants(net).ok

    def test_lossy_link_leaves_detectable_divergence(self):
        """Losing an update genuinely desynchronises the two ends -- the
        invariant must flag it until a session reset restores coherence."""
        net = build_line_network(3)
        net.set_message_loss("r1", "r2", loss_prob=1.0)
        net.announce("r0", PFX)
        net.converge()
        report = check_invariants(net)
        assert ADVERTISED_SYNC in invariants_of(report)
        # The modelled repair: clear the loss, bounce the session.
        net.set_message_loss("r1", "r2")
        net.reset_session("r1", "r2")
        net.converge()
        assert check_invariants(net).ok


class TestRibFibCoherence:
    def test_missing_fib_entry_detected(self):
        net = converged_line(3)
        net.router("r2").fib.remove(PFX)
        report = check_invariants(net)
        coherence = [v for v in report.violations
                     if v.invariant == RIB_FIB_COHERENCE]
        assert len(coherence) == 1
        assert coherence[0].node == "r2"

    def test_stale_fib_entry_detected(self):
        net = converged_line(3)
        ghost = IPv4Prefix.parse("184.164.245.0/24")
        net.router("r2").fib.insert(ghost, "r1")
        report = check_invariants(net)
        coherence = [v for v in report.violations
                     if v.invariant == RIB_FIB_COHERENCE]
        assert len(coherence) == 1
        assert "no Loc-RIB route" in coherence[0].detail

    def test_wrong_next_hop_detected(self):
        net = converged_line(3)
        net.router("r2").fib.insert(PFX, "r0")
        report = check_invariants(net)
        assert RIB_FIB_COHERENCE in invariants_of(report)
