"""Tests for the Appendix C.1 diverging-AS analysis."""

import pytest

from repro.dataplane.forwarding import ForwardingPlane
from repro.dataplane.traceroute import PathPair, ReverseTraceroute
from repro.measurement.divergence import analyze_divergence, _diverging_point
from repro.topology.testbed import (
    SECOND_PREFIX,
    SPECIFIC_PREFIX,
    build_deployment,
)
from repro.core.techniques import ProactivePrepending
from repro.topology.testbed import SUPERPREFIX

from tests.conftest import FAST_TIMING


class TestDivergingPoint:
    def test_identical_paths(self):
        assert _diverging_point([1, 2, 3], [1, 2, 3]) == 2

    def test_divergence_mid_path(self):
        assert _diverging_point([1, 2, 3], [1, 9, 3]) == 0

    def test_no_common_prefix(self):
        assert _diverging_point([1], [2]) == -1

    def test_different_lengths(self):
        assert _diverging_point([1, 2], [1, 2, 3]) == 1


@pytest.fixture(scope="module")
def c1_experiment():
    """The Appendix C.1 setup: unicast prefix u from sea1, anycast prefix
    a5 from all sites with others prepending five times."""
    dep = build_deployment()
    topo = dep.topology
    net = topo.build_network(seed=11, timing=FAST_TIMING)
    # u: second /24 announced only at sea1.
    net.announce(dep.site_node("sea1"), SECOND_PREFIX)
    # a5: specific /24 from everywhere, others prepended 5x.
    ProactivePrepending(5).announce_normal(net, dep, "sea1", SPECIFIC_PREFIX, SUPERPREFIX)
    net.converge()
    plane = ForwardingPlane(net, topo)
    rt = ReverseTraceroute(plane, topo, support_prob=1.0)
    u_addr = SECOND_PREFIX.address(10)
    a_addr = SPECIFIC_PREFIX.address(10)
    # "the 50k sea1 targets": §5.1 selection, i.e. nearby targets that
    # pure anycast routes to a *different* site.
    from repro.measurement.catchment import anycast_catchment

    catchment = anycast_catchment(topo, dep, timing=FAST_TIMING)
    pairs = []
    for info in topo.web_client_ases():
        if not info.location.region.startswith("us-"):
            continue
        if catchment.get(info.node_id) == "sea1":
            continue
        pair = rt.measure_pair(info.node_id, u_addr, a_addr)
        if pair is not None:
            pairs.append(pair)
    report = analyze_divergence(
        topo, dep, "sea1", pairs, topo.relationship_dataset()
    )
    return dep, report


class TestDivergenceReport:
    def test_unicast_paths_end_at_sea1(self, c1_experiment):
        dep, report = c1_experiment
        assert report.n_pairs > 5

    def test_most_targets_diverge_from_sea1(self, c1_experiment):
        """Table 1: sea1 keeps almost nothing; most path pairs diverge."""
        dep, report = c1_experiment
        assert report.n_to_intended < 0.3 * report.n_pairs

    def test_policy_preference_explains_divergence(self, c1_experiment):
        """The paper's 82%: diverging ASes choose the anycast route over
        a more-preferred link class."""
        dep, report = c1_experiment
        assert report.policy_preferred_frac > 0.5

    def test_research_networks_carry_diverted_traffic(self, c1_experiment):
        """The paper's 54%: R&E next hops after the divergence."""
        dep, report = c1_experiment
        assert report.research_next_hop_frac > 0.3

    def test_path_length_not_the_cause(self, c1_experiment):
        """No unicast path more than the prepend count longer than its
        anycast counterpart (App. C.1.3's first finding)."""
        dep, report = c1_experiment
        assert report.max_unicast_path_excess <= 5

    def test_diverged_pairs_have_diverging_asn(self, c1_experiment):
        dep, report = c1_experiment
        for pair in report.diverged:
            assert pair.diverging_asn is not None
            assert pair.next_hop_anycast is not None


class TestPartialRelationshipData:
    def test_unclassified_pairs_excluded_from_denominator(self, c1_experiment):
        """With coverage < 1, some diverged pairs are unclassifiable and
        must not count toward the policy-preferred fraction."""
        dep, report = c1_experiment
        topo = dep.topology
        import random

        sparse = topo.relationship_dataset(coverage=0.3, rng=random.Random(0))
        sparse_report = analyze_divergence(
            topo, dep, "sea1",
            [PathPair(p.target_node, list(p.to_unicast), list(p.to_anycast))
             for p in []],  # empty: just checks the API accepts datasets
            sparse,
        )
        assert sparse_report.n_pairs == 0
        classified = [p for p in report.diverged if p.classified]
        assert len(classified) <= len(report.diverged)
