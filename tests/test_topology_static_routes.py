"""Tests for the static valley-free routing solver, including its
equivalence with the dynamic BGP simulator's steady state."""

import pytest

from repro.bgp.policy import LOCAL_PREF, Relationship
from repro.topology.generator import Topology, TopologyParams, generate_topology
from repro.topology.geo import Location
from repro.topology.relationships import AsClass, AsInfo
from repro.topology.static_routes import CUSTOMER, PEER, PROVIDER, StaticRoutes
from repro.net.addr import IPv4Prefix

from tests.conftest import FAST_TIMING, SMALL_PARAMS

PFX = IPv4Prefix.parse("184.164.244.0/24")


def hand_topology() -> Topology:
    r"""dest <- mid (provider) ; mid -- peer ; peer <- top? layout:

        top
         |        (top provides mid and far)
        mid ------ peer      (mid peers with peer)
         |
        dest                 (mid provides dest)
        far is customer of top only.
    """
    topo = Topology(params=TopologyParams())
    loc = Location("us-west", 0.0, 0.0)
    for name, klass in (
        ("dest", AsClass.EYEBALL),
        ("mid", AsClass.TRANSIT),
        ("peer", AsClass.TRANSIT),
        ("top", AsClass.TIER1),
        ("far", AsClass.EYEBALL),
    ):
        topo.add_as(AsInfo(name, hash(name) % 1000 + abs(hash(name)) % 7, klass, loc))
    # avoid accidental duplicate asns for determinism of tests
    for i, name in enumerate(topo.ases):
        topo.ases[name].asn = 100 + i
    topo.link("dest", "mid", Relationship.PROVIDER)
    topo.link("mid", "top", Relationship.PROVIDER)
    topo.link("mid", "peer", Relationship.PEER)
    topo.link("far", "top", Relationship.PROVIDER)
    return topo


class TestStaticSolver:
    def test_customer_route_upward(self):
        routes = StaticRoutes(hand_topology(), "dest")
        mid = routes.route("mid")
        assert mid.pref_class == CUSTOMER
        assert mid.next_hop == "dest"
        top = routes.route("top")
        assert top.pref_class == CUSTOMER
        assert top.hops == 2

    def test_peer_route(self):
        routes = StaticRoutes(hand_topology(), "dest")
        peer = routes.route("peer")
        assert peer.pref_class == PEER
        assert peer.next_hop == "mid"

    def test_provider_route_downward(self):
        routes = StaticRoutes(hand_topology(), "dest")
        far = routes.route("far")
        assert far.pref_class == PROVIDER
        assert far.next_hop == "top"
        assert far.hops == 3

    def test_dest_has_no_route_entry(self):
        routes = StaticRoutes(hand_topology(), "dest")
        assert routes.route("dest") is None
        assert routes.reachable("dest")

    def test_path_reconstruction(self):
        routes = StaticRoutes(hand_topology(), "dest")
        assert routes.path("far") == ["far", "top", "mid", "dest"]
        assert routes.path("dest") == ["dest"]

    def test_unknown_destination_rejected(self):
        with pytest.raises(ValueError):
            StaticRoutes(hand_topology(), "nope")

    def test_valley_free_invariant(self):
        """After a peer or provider step, every subsequent step must be
        downward (provider -> customer)."""
        topo = generate_topology(SMALL_PARAMS)
        clients = topo.web_client_ases()[:8]
        for dest in clients:
            routes = StaticRoutes(topo, dest.node_id)
            for src in topo.ases:
                path = routes.path(src)
                if path is None:
                    continue
                descended = False
                for a, b in zip(path, path[1:]):
                    rel = topo.neighbors(a)[b]
                    if descended:
                        assert rel is Relationship.CUSTOMER, (
                            f"valley in path {path} at {a}->{b}"
                        )
                    if rel is not Relationship.PROVIDER:
                        descended = True

    def test_rtt_positive_and_symmetric_scale(self):
        topo = generate_topology(SMALL_PARAMS)
        dest = topo.web_client_ases()[0]
        routes = StaticRoutes(topo, dest.node_id)
        for src in list(topo.ases)[:20]:
            if src == dest.node_id:
                continue
            rtt = routes.rtt_s(src)
            if rtt is not None:
                assert 0 < rtt < 1.0  # under a second


class TestEquivalenceWithDynamicBgp:
    """The static solver must agree with the converged dynamic simulator
    on route *class* and path length for a single-origin prefix."""

    @pytest.mark.parametrize("dest_index", [0, 3, 6])
    def test_same_preference_class_and_hops(self, dest_index):
        topo = generate_topology(SMALL_PARAMS)
        dest = topo.web_client_ases()[dest_index]
        static = StaticRoutes(topo, dest.node_id)

        network = topo.build_network(seed=5, timing=FAST_TIMING)
        network.announce(dest.node_id, PFX)
        network.converge()

        pref_of_class = {CUSTOMER: LOCAL_PREF[Relationship.CUSTOMER],
                         PEER: LOCAL_PREF[Relationship.PEER],
                         PROVIDER: LOCAL_PREF[Relationship.PROVIDER]}
        checked = 0
        for node in topo.ases:
            if node == dest.node_id:
                continue
            dynamic = network.router(node).best_route(PFX)
            expected = static.route(node)
            if expected is None:
                assert dynamic is None
                continue
            assert dynamic is not None, f"{node} unreachable dynamically"
            assert dynamic.local_pref == pref_of_class[expected.pref_class], node
            assert len(dynamic.as_path) == expected.hops, node
            checked += 1
        assert checked > 20
