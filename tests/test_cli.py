"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in (
            "topology", "failover", "compare", "sweep", "control", "appendix", "drill",
        ):
            args = parser.parse_args(
                [command, "withdrawal"] if command == "appendix" else [command]
            )
            assert callable(args.func)

    def test_seed_is_global(self):
        args = build_parser().parse_args(["--seed", "7", "topology"])
        assert args.seed == 7

    def test_failover_defaults(self):
        args = build_parser().parse_args(["failover"])
        assert args.technique == "reactive-anycast"
        assert args.site == "sea1"
        assert not args.silent

    def test_unknown_technique_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["failover", "-t", "quantum"])

    def test_parallel_flags(self):
        args = build_parser().parse_args(["compare", "--workers", "4"])
        assert args.workers == 4
        assert args.cell_timeout == 900.0
        assert not args.no_progress
        args = build_parser().parse_args(["compare"])
        assert args.workers == 1  # default stays serial

    def test_workers_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--workers", "0"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert "combined" in args.techniques
        assert len(args.techniques) == 5
        assert args.output == "sweep.json"

    def test_sweep_unknown_technique_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "-t", "quantum"])


class TestCommands:
    def test_topology_summary(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "ASes:" in out
        assert "sites: ams, ath" in out

    def test_topology_sites_flag(self, capsys):
        assert main(["topology", "--sites"]) == 0
        out = capsys.readouterr().out
        assert "region=us-west" in out

    def test_failover_small_run(self, capsys):
        code = main([
            "failover", "-t", "anycast", "-s", "msn",
            "--targets", "5", "--duration", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reconnection:" in out
        assert "failover:" in out

    def test_failover_unknown_site(self, capsys):
        code = main(["failover", "-s", "lhr", "--targets", "3", "--duration", "30"])
        assert code == 2

    def test_drill_passes(self, capsys):
        code = main(["drill", "-t", "reactive-anycast", "--clients", "5"])
        assert code == 0
        assert "all sites pass" in capsys.readouterr().out

    def test_drill_unicast_fails(self, capsys):
        code = main(["drill", "-t", "unicast", "--clients", "5"])
        assert code == 1
        assert "FAILURES" in capsys.readouterr().out

    def test_drill_fault_flags_parse(self):
        args = build_parser().parse_args(
            ["drill", "--faults", "plan.json", "--check-invariants"]
        )
        assert args.faults == "plan.json"
        assert args.check_invariants
        args = build_parser().parse_args(["scenario", "--faults", "plan.json"])
        assert args.faults == "plan.json"

    def test_drill_missing_fault_plan_rejected(self, capsys):
        code = main(["drill", "--faults", "/nonexistent/plan.json", "--clients", "3"])
        assert code == 2
        assert "cannot load fault plan" in capsys.readouterr().err

    def test_drill_invalid_fault_plan_rejected(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"faults": [{"kind": "meteor_strike", "at": 1.0}]}')
        code = main(["drill", "--faults", str(plan), "--clients", "3"])
        assert code == 2
        assert "unknown fault kind" in capsys.readouterr().err


class TestExtendedCommands:
    def test_scenario_event_parsing(self):
        from repro.cli.scenario import _parse_event

        assert _parse_event("fail:sea1@60") == ("fail", "sea1", 60.0)
        assert _parse_event("recover:msn@200.5") == ("recover", "msn", 200.5)
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_event("fail:sea1")

    def test_scenario_command(self, capsys):
        code = main([
            "scenario", "-t", "anycast", "-s", "msn",
            "-e", "fail:msn@30", "--duration", "90",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "downtime" in out

    def test_scenario_unknown_site(self, capsys):
        assert main(["scenario", "-s", "lhr", "--duration", "30"]) == 2

    def test_playbook_drain(self, capsys):
        code = main(["playbook", "--drain", "ams", "--levels", "0", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best drain play for ams" in out

    def test_playbook_unknown_site(self, capsys):
        assert main(["playbook", "--drain", "lhr", "--levels", "0", "3"]) == 2

    def test_control_command(self, capsys):
        code = main(["control", "--prepends", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "not-by-anycast" in out
        assert "sea1" in out

    def test_appendix_propagation(self, capsys):
        code = main(["appendix", "propagation"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hypergiants" in out
        assert "testbed" in out

    def test_configgen_to_dir(self, capsys, tmp_path):
        code = main([
            "configgen", "-t", "reactive-anycast",
            "--specific-site", "sea1", "-o", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "sea1.conf").exists()
        assert (tmp_path / "ams.emergency.conf").exists()
        text = (tmp_path / "ams.emergency.conf").read_text()
        assert "184.164.244.0/24" in text

    def test_configgen_stdout_single_site(self, capsys):
        code = main(["configgen", "-t", "proactive-prepending", "--site", "ams"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bgp_path.prepend(47065);" in out

    def test_configgen_unknown_site(self, capsys):
        assert main(["configgen", "--site", "lhr"]) == 2

    def test_compare_small(self, capsys):
        code = main([
            "compare", "--sites", "msn", "--targets", "4", "--duration", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "proactive-superprefix" in out
        assert "failover time CDF" in out

    def test_compare_parallel_matches_serial(self, capsys):
        """--workers 2 prints byte-for-byte what the serial path prints."""
        argv = ["compare", "--sites", "msn", "--targets", "4", "--duration", "60"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2", "--no-progress"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_sweep_writes_archive(self, capsys, tmp_path):
        out = tmp_path / "sweep.json"
        code = main([
            "sweep", "-t", "anycast", "--sites", "msn", "sea1",
            "--targets", "4", "--duration", "40", "-o", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "2 cells" in text
        assert "anycast" in text
        import json

        doc = json.loads(out.read_text())
        assert doc["workers"] == 1
        assert [c["cell"] for c in doc["cells"]] == ["anycast/msn", "anycast/sea1"]
        assert set(doc["pooled"]) == {"anycast"}

    def test_sweep_unknown_site(self, capsys, tmp_path):
        code = main(["sweep", "--sites", "lhr", "-o", str(tmp_path / "s.json")])
        assert code == 2
        assert "unknown site" in capsys.readouterr().out

    def test_failover_silent_flag(self, capsys):
        code = main([
            "failover", "-t", "anycast", "-s", "msn", "--silent",
            "--targets", "4", "--duration", "60", "--detection-delay", "5",
        ])
        assert code == 0
        assert "silent failure" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_failover_trace_and_summarize(self, capsys, tmp_path):
        trace = tmp_path / "out.jsonl"
        code = main([
            "failover", "-t", "anycast", "-s", "msn",
            "--targets", "4", "--duration", "60", "--trace", str(trace),
        ])
        assert code == 0
        assert trace.exists()
        capsys.readouterr()

        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "phase timings" in out
        assert "fail-probe" in out
        assert "BGP updates" in out
        assert "site failures" in out

    def test_failover_metrics_dump(self, capsys):
        code = main([
            "failover", "-t", "anycast", "-s", "msn",
            "--targets", "4", "--duration", "60", "--metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # Results first, then the metrics dump.
        assert "bgp.updates_sent" in out
        assert out.index("failover:") < out.index("bgp.updates_sent")

    def test_trace_limit_bounds_recorder(self, capsys, tmp_path):
        trace = tmp_path / "bounded.jsonl"
        code = main([
            "failover", "-t", "anycast", "-s", "msn",
            "--targets", "4", "--duration", "60",
            "--trace", str(trace), "--trace-limit", "50",
        ])
        assert code == 0
        lines = [l for l in trace.read_text().splitlines() if l.strip()]
        # 50 retained events plus the trace_meta line reporting the drops.
        assert len(lines) == 51
        meta = json.loads(lines[0])
        assert meta["kind"] == "trace_meta"
        assert meta["dropped"] > 0
        assert meta["recorded"] == meta["dropped"] + 50

    def test_summarize_missing_file(self, capsys, tmp_path):
        assert main(["trace", "summarize", str(tmp_path / "missing.jsonl")]) == 2

    def test_summarize_invalid_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "summarize", str(bad)]) == 2

    def test_verbose_flag_parses(self):
        args = build_parser().parse_args(["-vv", "topology"])
        assert args.verbose == 2
        assert build_parser().parse_args(["topology"]).verbose == 0
