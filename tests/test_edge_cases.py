"""Assorted edge cases pinned down late in development."""


from repro.bgp.engine import EventEngine
from repro.bgp.network import BgpNetwork
from repro.net.addr import IPv4Prefix
from repro.topology.testbed import PROBE_SOURCE

from tests.conftest import FAST_TIMING, build_line_network

PFX = IPv4Prefix.parse("184.164.244.0/24")


class TestIdempotentOrigination:
    def test_reannouncing_same_config_sends_nothing(self):
        """originate() with an unchanged config must not generate churn
        (the controller re-runs announce_normal on recovery paths)."""
        net = build_line_network(3)
        net.announce("r0", PFX, prepend=2)
        net.converge()
        session = net.router("r0").sessions["r1"]
        before = session.sent_updates
        net.announce("r0", PFX, prepend=2)
        net.converge()
        assert session.sent_updates == before

    def test_changing_prepend_reexports(self):
        net = build_line_network(3)
        net.announce("r0", PFX)
        net.converge()
        assert net.router("r2").best_route(PFX).as_path == (101, 100)
        net.announce("r0", PFX, prepend=3)
        net.converge()
        assert net.router("r2").best_route(PFX).as_path == (101, 100, 100, 100, 100)

    def test_changing_med_reexports(self):
        net = build_line_network(2)
        net.announce("r0", PFX, med=0)
        net.converge()
        assert net.router("r1").best_route(PFX).med == 0
        net.announce("r0", PFX, med=50)
        net.converge()
        assert net.router("r1").best_route(PFX).med == 50

    def test_narrowing_neighbor_scope_withdraws(self):
        """Re-originating with a smaller neighbor set must withdraw the
        route from the newly-excluded neighbors."""
        net = BgpNetwork(seed=0, default_timing=FAST_TIMING)
        net.add_router("origin", 1)
        net.add_router("a", 2)
        net.add_router("b", 3)
        net.add_provider("origin", "a")
        net.add_provider("origin", "b")
        net.announce("origin", PFX)
        net.converge()
        assert net.router("b").best_route(PFX) is not None
        net.announce("origin", PFX, neighbors=frozenset({"a"}))
        net.converge()
        assert net.router("a").best_route(PFX) is not None
        assert net.router("b").best_route(PFX) is None


class TestEngineEdges:
    def test_schedule_at_now_is_allowed(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        engine.schedule_at(engine.now, lambda: fired.append(True))
        engine.run_until_idle()
        assert fired == [True]

    def test_zero_delay_runs_after_current_event(self):
        engine = EventEngine()
        order = []

        def first():
            order.append("first")
            engine.schedule(0.0, lambda: order.append("nested"))

        engine.schedule(1.0, first)
        engine.schedule(1.0, lambda: order.append("second"))
        engine.run_until_idle()
        assert order == ["first", "second", "nested"]


class TestProberEdges:
    def test_unreachable_target_counts_as_sent_never_answered(self, deployment):
        """A target with no policy path from the vantage still gets its
        probe logged (so it shows up censored in the metrics)."""
        from repro.dataplane.capture import SiteCapture
        from repro.dataplane.forwarding import ForwardingPlane
        from repro.dataplane.ping import Prober

        topology = deployment.topology
        network = topology.build_network(seed=33, timing=FAST_TIMING)
        plane = ForwardingPlane(network, topology)
        capture = SiteCapture()
        prober = Prober(plane, deployment, capture, PROBE_SOURCE, "ams")
        # An address whose owner AS does not exist in the topology at all:
        # latency_to_client is None, no reply is ever scheduled.
        ghost = IPv4Prefix.parse("10.250.0.0/24").address(1)
        prober.probe_once(ghost, "eye-us-west-0")  # node exists, addr anywhere
        # Use a node that IS disconnected from the vantage: none exists in
        # the default topology, so instead verify the bookkeeping shape.
        assert len(prober.logs) == 1
        log = prober.logs[ghost]
        assert len(log.sent) == 1


class TestWithdrawDuringConvergence:
    def test_withdraw_before_announcement_finishes(self):
        """Withdrawing while the announcement is still propagating leaves
        no residue anywhere."""
        net = build_line_network(6, timing=FAST_TIMING)
        net.announce("r0", PFX)
        # Step just a few events: propagation is mid-flight.
        for _ in range(3):
            net.engine.step()
        net.withdraw("r0", PFX)
        net.converge()
        for node in net.nodes():
            assert net.router(node).best_route(PFX) is None, node
