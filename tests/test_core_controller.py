"""Tests for the CDN controller's failure handling."""

import pytest

from repro.core.controller import CdnController
from repro.core.techniques import Anycast, ReactiveAnycast, Unicast
from repro.dns.authoritative import AuthoritativeServer, StaticMapping
from repro.topology.testbed import SPECIFIC_PREFIX, SUPERPREFIX

from tests.conftest import FAST_TIMING


def make_controller(deployment, technique, dns=None, detection_delay=2.0):
    net = deployment.topology.build_network(seed=4, timing=FAST_TIMING)
    return CdnController(
        network=net,
        deployment=deployment,
        technique=technique,
        prefix=SPECIFIC_PREFIX,
        superprefix=SUPERPREFIX,
        detection_delay=detection_delay,
        dns=dns,
    )


class TestFailureHandling:
    def test_fail_site_withdraws_immediately(self, deployment):
        controller = make_controller(deployment, Anycast())
        controller.deploy("sea1")
        controller.network.converge()
        event = controller.fail_site("sea1")
        assert SPECIFIC_PREFIX in event.withdrawn_prefixes
        node = deployment.site_node("sea1")
        assert controller.network.router(node).originated_prefixes() == []

    def test_detection_delay_gates_reaction(self, deployment):
        controller = make_controller(deployment, ReactiveAnycast(), detection_delay=5.0)
        controller.deploy("sea1")
        controller.network.converge()
        controller.fail_site("sea1")
        ams = deployment.site_node("ams")
        controller.network.run_for(4.0)
        assert SPECIFIC_PREFIX not in controller.network.router(ams).originated_prefixes()
        controller.network.run_for(2.0)
        assert SPECIFIC_PREFIX in controller.network.router(ams).originated_prefixes()

    def test_failure_event_record(self, deployment):
        controller = make_controller(deployment, Anycast(), detection_delay=3.0)
        controller.deploy("sea1")
        controller.network.converge()
        before = controller.network.now
        event = controller.fail_site("sea1")
        assert event.site == "sea1"
        assert event.failed_at == before
        assert event.detected_at == before + 3.0
        assert controller.failures == [event]

    def test_unknown_site_rejected(self, deployment):
        controller = make_controller(deployment, Anycast())
        with pytest.raises(KeyError):
            controller.deploy("lhr")
        with pytest.raises(KeyError):
            controller.fail_site("lhr")


class TestDnsIntegration:
    def make_dns(self, deployment):
        addresses = {
            site: SPECIFIC_PREFIX.address(10 + i)
            for i, site in enumerate(deployment.site_names)
        }
        return AuthoritativeServer(
            "cdn.example", StaticMapping(default_site="sea1"), addresses, ttl=20.0
        )

    def test_dns_repointed_after_detection(self, deployment):
        dns = self.make_dns(deployment)
        controller = make_controller(deployment, Unicast(), dns=dns, detection_delay=2.0)
        controller.deploy("sea1")
        controller.network.converge()
        controller.fail_site("sea1")
        controller.network.run_for(3.0)
        assert "sea1" not in dns.site_addresses
        assert dns.policy.default_site != "sea1"

    def test_steered_clients_remapped(self, deployment):
        dns = self.make_dns(deployment)
        dns.policy.steer("client-1", "sea1")
        controller = make_controller(deployment, Unicast(), dns=dns)
        controller.deploy("sea1")
        controller.network.converge()
        controller.fail_site("sea1")
        controller.network.run_for(3.0)
        assert dns.policy.overrides["client-1"] != "sea1"
