"""Availability ledger: outage intervals, classification, determinism.

Unit tests drive :class:`AvailabilityLedger` with synthetic probe
streams; the equality test runs the same sweep serially and with two
workers and asserts the ledger JSON is byte-identical -- the property
``repro report`` relies on when traces come from ``--workers N`` runs.
"""

from __future__ import annotations

import json

import pytest

from repro.bgp.session import SessionTiming
from repro.core.experiment import FailoverConfig, FailoverExperiment
from repro.core.techniques import Anycast, ReactiveAnycast
from repro.obs import LEDGER_SCHEMA, OUTAGE_CLASSES, AvailabilityLedger, render_report
from repro.parallel import matrix, run_sweep
from repro.telemetry import (
    PhaseStart,
    ProbeLost,
    ProbeReply,
    ProbeSent,
    Telemetry,
    TraceRecorder,
    using,
)

TARGET = "10.0.0.1"


def run_context(technique="anycast", site="sea1", t=0.0):
    return PhaseStart(
        t=t, name="fail-probe", tags={"technique": technique, "site": site}
    )


def probe_round_trip(t, seq, site="msn"):
    return [
        ProbeSent(t=t, target=TARGET, seq=seq),
        ProbeReply(t=t + 0.1, target=TARGET, seq=seq, site=site),
    ]


class TestIntervalConstruction:
    def test_no_probes_no_outages(self):
        ledger = AvailabilityLedger.from_events([run_context()])
        assert ledger.outages == []
        assert ledger.user_seconds_lost() == 0.0

    def test_all_answered_no_outages(self):
        events = [run_context()]
        for seq in range(5):
            events.extend(probe_round_trip(t=10.0 * seq, seq=seq))
        assert AvailabilityLedger.from_events(events).outages == []

    def test_consecutive_failures_form_one_interval(self):
        events = [run_context()]
        events.extend(probe_round_trip(t=0.0, seq=0))
        events.append(ProbeSent(t=10.0, target=TARGET, seq=1))
        events.append(ProbeLost(t=10.5, target=TARGET, seq=1, reason="no-route"))
        events.append(ProbeSent(t=20.0, target=TARGET, seq=2))
        events.append(ProbeLost(t=20.5, target=TARGET, seq=2, reason="no-route"))
        events.extend(probe_round_trip(t=30.0, seq=3))
        ledger = AvailabilityLedger.from_events(events)
        assert len(ledger.outages) == 1
        outage = ledger.outages[0]
        # from the first failed send to the send of the next answered probe
        assert (outage.start, outage.end) == (10.0, 30.0)
        assert outage.probes_missed == 2
        assert outage.duration == 20.0

    def test_unanswered_probe_counts_as_failed(self):
        # no reply ever recorded for seq 1: reply still in flight at the
        # end of the run is downtime, not a gap in the books
        events = [run_context()]
        events.extend(probe_round_trip(t=0.0, seq=0))
        events.append(ProbeSent(t=10.0, target=TARGET, seq=1))
        events.extend(probe_round_trip(t=20.0, seq=2))
        ledger = AvailabilityLedger.from_events(events)
        assert len(ledger.outages) == 1
        assert ledger.outages[0].outage_class == "blackhole"

    def test_trailing_outage_closed_by_median_gap(self):
        events = [run_context()]
        for seq in range(3):
            events.extend(probe_round_trip(t=10.0 * seq, seq=seq))
        events.append(ProbeSent(t=30.0, target=TARGET, seq=3))
        events.append(ProbeLost(t=30.5, target=TARGET, seq=3, reason="no-route"))
        ledger = AvailabilityLedger.from_events(events)
        assert len(ledger.outages) == 1
        # last failed send (30) + the 10s median inter-probe gap
        assert ledger.outages[0].end == 40.0

    def test_separate_runs_do_not_mix(self):
        # same target and seq numbers in two runs: the run context keys
        # them apart, so neither run sees the other's replies
        events = [run_context(technique="anycast")]
        events.append(ProbeSent(t=0.0, target=TARGET, seq=0))
        events.append(run_context(technique="reactive-anycast", t=5.0))
        events.extend(probe_round_trip(t=10.0, seq=0))
        ledger = AvailabilityLedger.from_events(events)
        assert len(ledger.outages) == 1
        assert ledger.outages[0].technique == "anycast"


class TestClassification:
    def fail(self, t, seq, reason):
        return [
            ProbeSent(t=t, target=TARGET, seq=seq),
            ProbeLost(t=t + 0.1, target=TARGET, seq=seq, reason=reason),
        ]

    def outage_for(self, reasons):
        events = [run_context()]
        for seq, reason in enumerate(reasons):
            events.extend(self.fail(10.0 * seq, seq, reason))
        events.extend(probe_round_trip(t=10.0 * len(reasons), seq=99))
        ledger = AvailabilityLedger.from_events(events)
        assert len(ledger.outages) == 1
        return ledger.outages[0]

    def test_majority_reason_wins(self):
        outage = self.outage_for(["loop", "ttl-exceeded", "no-route"])
        assert outage.outage_class == "loop"

    def test_wrong_site_class(self):
        outage = self.outage_for(["dead-site", "off-net"])
        assert outage.outage_class == "wrong-site"

    def test_tie_breaks_blackhole_over_loop(self):
        outage = self.outage_for(["loop", "unreachable"])
        assert outage.outage_class == "blackhole"

    def test_tie_breaks_loop_over_wrong_site(self):
        outage = self.outage_for(["off-net", "ttl-exceeded"])
        assert outage.outage_class == "loop"

    def test_unknown_reason_folds_to_blackhole(self):
        outage = self.outage_for(["martian-packets"])
        assert outage.outage_class == "blackhole"


class TestAggregationAndJson:
    def make_ledger(self):
        events = [run_context(technique="anycast", site="sea1")]
        events.append(ProbeSent(t=0.0, target=TARGET, seq=0))
        events.append(ProbeLost(t=0.5, target=TARGET, seq=0, reason="no-route"))
        events.extend(probe_round_trip(t=10.0, seq=1))
        events.append(run_context(technique="anycast", site="ams", t=20.0))
        events.append(ProbeSent(t=20.0, target="10.0.0.2", seq=0))
        events.append(ProbeLost(t=20.5, target="10.0.0.2", seq=0, reason="loop"))
        events.extend(
            [
                ProbeSent(t=30.0, target="10.0.0.2", seq=1),
                ProbeReply(t=30.1, target="10.0.0.2", seq=1, site="msn"),
            ]
        )
        return AvailabilityLedger.from_events(events)

    def test_by_technique_rollup(self):
        tech = self.make_ledger().by_technique()["anycast"]
        assert tech["outages"] == 2
        assert tech["user_seconds_lost"] == 20.0
        assert set(tech["sites"]) == {"sea1", "ams"}
        assert tech["sites"]["ams"]["by_class"]["loop"] == 10.0

    def test_to_dict_schema(self):
        doc = self.make_ledger().to_dict()
        assert doc["schema"] == LEDGER_SCHEMA
        assert doc["total_outages"] == 2
        assert doc["total_user_seconds_lost"] == 20.0
        tech = doc["techniques"]["anycast"]
        assert set(tech["by_class"]) == set(OUTAGE_CLASSES)
        assert tech["targets_affected"] == 2

    def test_json_is_canonical(self):
        ledger = self.make_ledger()
        text = ledger.to_json()
        assert text == self.make_ledger().to_json()
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == LEDGER_SCHEMA

    def test_render_report_lists_technique_and_site(self):
        text = render_report(self.make_ledger())
        assert "2 outage(s)" in text
        assert "anycast" in text
        assert "sea1" in text and "ams" in text

    def test_render_empty_report(self):
        text = render_report(AvailabilityLedger())
        assert "no probe activity" in text


class TestSerialParallelByteIdentity:
    """Satellite (d): the ledger built from a two-worker sweep's merged
    trace is byte-identical to the serial run's."""

    FAST = SessionTiming(latency=0.05, jitter=0.5, mrai=10.0, busy_prob=0.3, fib_delay=1.0)

    @pytest.fixture(scope="class")
    def sweep_inputs(self, deployment):
        config = FailoverConfig(
            probe_duration=40.0, targets_per_site=4, timing=self.FAST, seed=13
        )
        experiment = FailoverExperiment(deployment.topology, deployment, config)
        cells = matrix([Anycast(), ReactiveAnycast()], list(deployment.site_names[:2]))
        return experiment, cells

    def ledger_json(self, experiment, cells, workers):
        tracer = TraceRecorder()
        with using(Telemetry(tracer=tracer)):
            report = run_sweep(experiment, cells, workers=workers)
        assert report.ok
        return AvailabilityLedger.from_events(tracer.events).to_json()

    def test_two_workers_byte_identical(self, sweep_inputs):
        experiment, cells = sweep_inputs
        serial = self.ledger_json(experiment, cells, workers=1)
        parallel = self.ledger_json(experiment, cells, workers=2)
        assert serial == parallel
        assert json.loads(serial)["total_outages"] > 0
