"""Reporters and the finding model: ordering, byte-stability, tallies."""

import json

from repro.analysis.findings import Finding, FindingCollector, Severity
from repro.analysis.reporters import render_json, render_text


def finding(code="DET001", source="a.py", line=1, col=0,
            severity=Severity.ERROR, message="m"):
    return Finding(code=code, message=message, severity=severity,
                   source=source, line=line, col=col)


class TestSeverity:
    def test_error_blocks_warning_advises(self):
        assert Severity.ERROR.blocking
        assert not Severity.WARNING.blocking

    def test_collector_ok_tracks_blocking_only(self):
        collector = FindingCollector()
        collector.add(finding(severity=Severity.WARNING))
        assert collector.ok and collector.warnings and not collector.errors
        collector.add(finding())
        assert not collector.ok and len(collector.errors) == 1


class TestSortKey:
    def test_orders_by_position_then_code_then_message(self):
        unsorted = [
            finding(source="b.py", line=1),
            finding(source="a.py", line=9),
            finding(source="a.py", line=2, code="DET005"),
            finding(source="a.py", line=2, code="DET001", message="z"),
            finding(source="a.py", line=2, code="DET001", message="a"),
        ]
        ordered = sorted(unsorted, key=Finding.sort_key)
        assert [(f.source, f.line, f.code, f.message) for f in ordered] == [
            ("a.py", 2, "DET001", "a"),
            ("a.py", 2, "DET001", "z"),
            ("a.py", 2, "DET005", "m"),
            ("a.py", 9, "DET001", "m"),
            ("b.py", 1, "DET001", "m"),
        ]

    def test_positionless_findings_sort_before_positioned(self):
        preflightish = Finding(code="PRE101", message="m", source="scenario")
        assert preflightish.sort_key() < finding(source="scenario").sort_key()


class TestRenderText:
    def test_empty_says_no_findings(self):
        assert render_text([]) == "no findings"

    def test_zero_files_checked_is_explicit(self):
        text = render_text([], files_checked=0)
        assert "0 file(s) checked" in text and "no findings" in text

    def test_counts_split_by_severity(self):
        text = render_text([finding(), finding(severity=Severity.WARNING, line=2)])
        assert "2 finding(s): 1 error(s), 1 warning(s)" in text

    def test_output_independent_of_input_order(self):
        items = [finding(line=3), finding(line=1), finding(source="z.py")]
        assert render_text(items) == render_text(list(reversed(items)))


class TestRenderJson:
    def test_payload_shape(self):
        payload = json.loads(render_json(
            [finding(), finding(severity=Severity.WARNING, line=2)],
            files_checked=7,
        ))
        assert payload["count"] == 2
        assert payload["errors"] == 1
        assert payload["warnings"] == 1
        assert payload["files_checked"] == 7
        assert payload["findings"][0]["code"] == "DET001"

    def test_files_checked_omitted_by_default(self):
        payload = json.loads(render_json([finding()]))
        assert "files_checked" not in payload

    def test_byte_stable_across_input_order(self):
        items = [
            finding(source="b.py", line=4),
            finding(source="a.py", line=2, code="DET005"),
            finding(source="a.py", line=2, code="DET001"),
        ]
        assert render_json(items) == render_json(list(reversed(items)))

    def test_findings_emitted_in_sort_key_order(self):
        items = [finding(source="b.py"), finding(source="a.py")]
        payload = json.loads(render_json(items))
        assert [f["source"] for f in payload["findings"]] == ["a.py", "b.py"]
