"""Tests for catchment and Table-1 control measurement on the default
deployment. These assert the *paper-facing shapes*: sea1's pathology,
ath's high prepending control, customer-preference mechanisms."""

import pytest

from repro.measurement.catchment import anycast_catchment, catchment_from_network
from repro.measurement.control import (
    measure_control,
    measure_control_all_sites,
    prepending_catchment,
)
from repro.topology.testbed import SPECIFIC_PREFIX

from tests.conftest import FAST_TIMING


@pytest.fixture(scope="module")
def catchment(deployment):
    return anycast_catchment(deployment.topology, deployment, timing=FAST_TIMING)


@pytest.fixture(scope="module")
def control(deployment, catchment):
    return measure_control_all_sites(
        deployment.topology, deployment, catchment, timing=FAST_TIMING
    )


class TestAnycastCatchment:
    def test_every_web_client_has_a_site(self, deployment, catchment):
        assert catchment
        assert all(site is not None for site in catchment.values())

    def test_multiple_sites_attract_traffic(self, deployment, catchment):
        assert len(set(catchment.values())) >= 4

    def test_ams_dominates_europe(self, deployment, topology, catchment):
        """The IXP-rich site wins most nearby clients under anycast
        (Table 1: only 15% of ams-nearby targets go elsewhere)."""
        eu = [
            node for node, site in catchment.items()
            if topology.ases[node].location.region.startswith("eu-")
        ]
        to_ams = sum(1 for node in eu if catchment[node] == "ams")
        assert to_ams / len(eu) > 0.5

    def test_catchment_from_network_reads_origin(self, deployment, topology):
        net = topology.build_network(seed=8, timing=FAST_TIMING)
        net.announce(deployment.site_node("msn"), SPECIFIC_PREFIX)
        net.converge()
        nodes = [a.node_id for a in topology.web_client_ases()][:5]
        catch = catchment_from_network(net, deployment, SPECIFIC_PREFIX, nodes)
        assert all(site == "msn" for site in catch.values())

    def test_no_announcement_gives_none(self, deployment, topology):
        net = topology.build_network(seed=8, timing=FAST_TIMING)
        nodes = [topology.web_client_ases()[0].node_id]
        catch = catchment_from_network(net, deployment, SPECIFIC_PREFIX, nodes)
        assert list(catch.values()) == [None]


class TestPrependingCatchment:
    def test_intended_site_attracts_more_than_anycast(self, deployment, topology, catchment):
        """Prepending at other sites strictly grows the intended site's
        catchment relative to anycast."""
        nodes = [a.node_id for a in topology.web_client_ases()]
        prep = prepending_catchment(
            topology, deployment, "ath", prepend=3, timing=FAST_TIMING, nodes=nodes
        )
        anycast_count = sum(1 for n in nodes if catchment.get(n) == "ath")
        prep_count = sum(1 for n in nodes if prep.get(n) == "ath")
        assert prep_count > anycast_count


class TestTable1Shapes:
    def test_sea1_pathological(self, control):
        """Table 1's headline: the commercially-hosted sea1 attracts
        almost none of its anycast-lost targets even with prepending."""
        assert control["sea1"].controllable[3] < 0.2

    def test_ath_near_total_control(self, control):
        assert control["ath"].controllable[3] > 0.85

    def test_most_sites_have_majority_control(self, control):
        majority = [
            site for site, r in control.items()
            if site not in ("sea1", "ams") and r.controllable[3] >= 0.5
        ]
        assert len(majority) >= 5

    def test_ams_few_targets_lost_to_anycast(self, control):
        assert control["ams"].not_routed_by_anycast < 0.4

    def test_prepend5_never_worse(self, control):
        for site, result in control.items():
            assert result.controllable[5] >= result.controllable[3] - 0.05, site

    def test_nearby_counts_positive(self, control):
        for site, result in control.items():
            assert result.nearby > 0, site


class TestControlSingleSite:
    def test_explicit_prepend_list(self, deployment, catchment):
        result = measure_control(
            deployment.topology, deployment, "msn", catchment,
            prepends=(1,), timing=FAST_TIMING,
        )
        assert set(result.controllable) == {1}

    def test_restricted_announcement_reduces_nothing_for_full_peers(
        self, deployment, catchment
    ):
        """With restrict_to_shared_neighbors, control can only shrink
        (backup routes reach fewer networks)."""
        open_result = measure_control(
            deployment.topology, deployment, "msn", catchment,
            prepends=(3,), timing=FAST_TIMING,
        )
        restricted = measure_control(
            deployment.topology, deployment, "msn", catchment,
            prepends=(3,), timing=FAST_TIMING,
            restrict_to_shared_neighbors=True,
        )
        assert restricted.controllable[3] >= open_result.controllable[3] - 1e-9
