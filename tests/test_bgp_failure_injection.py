"""Tests for link/node failure injection in the BGP substrate."""

import pytest

from repro.bgp.network import BgpNetwork
from repro.bgp.policy import Relationship
from repro.bgp.session import SessionTiming
from repro.net.addr import IPv4Address, IPv4Prefix

from tests.conftest import FAST_TIMING, build_line_network

PFX = IPv4Prefix.parse("184.164.244.0/24")
PFX2 = IPv4Prefix.parse("184.164.245.0/24")
ADDR = IPv4Address.parse("184.164.244.10")


def diamond() -> BgpNetwork:
    """origin with two providers (left, right), both customers of top."""
    net = BgpNetwork(seed=0, default_timing=FAST_TIMING)
    for name, asn in (("origin", 1), ("left", 2), ("right", 3), ("top", 4)):
        net.add_router(name, asn)
    net.add_provider("origin", "left")
    net.add_provider("origin", "right")
    net.add_provider("left", "top")
    net.add_provider("right", "top")
    return net


class TestLinkFailure:
    def test_routes_over_failed_link_flushed(self):
        net = diamond()
        net.announce("origin", PFX)
        net.converge()
        best = net.router("top").best_route(PFX)
        primary = best.learned_from
        net.fail_link("origin", primary)
        net.converge()
        rerouted = net.router("top").best_route(PFX)
        assert rerouted is not None
        assert rerouted.learned_from != primary

    def test_all_paths_cut_removes_reachability(self):
        net = diamond()
        net.announce("origin", PFX)
        net.converge()
        net.fail_link("origin", "left")
        net.fail_link("origin", "right")
        net.converge()
        assert net.router("top").best_route(PFX) is None
        assert net.router("origin").best_route(PFX) is not None  # local

    def test_unknown_link_rejected(self):
        net = diamond()
        with pytest.raises(KeyError):
            net.fail_link("origin", "top")

    def test_adjacency_updated(self):
        net = diamond()
        net.fail_link("origin", "left")
        assert "left" not in net.neighbors("origin")
        assert "origin" not in net.neighbors("left")

    def test_in_flight_messages_lost(self):
        """An announcement in flight when the link fails never arrives."""
        net = build_line_network(2)
        net.announce("r0", PFX)  # delivery scheduled, not yet executed
        net.fail_link("r0", "r1")
        net.converge()
        assert net.router("r1").best_route(PFX) is None

    def test_restore_link_resynchronizes(self):
        net = diamond()
        net.announce("origin", PFX)
        net.converge()
        net.fail_link("origin", "left")
        net.converge()
        net.restore_link("origin", "left")
        net.converge()
        assert net.router("left").adj_rib_in.route_from(PFX, "origin") is not None
        # top should again prefer whichever tie-break chooses, but both
        # paths exist in its Adj-RIB-In.
        assert len(net.router("top").adj_rib_in.candidates(PFX)) == 2

    def test_restore_preserves_relationship(self):
        net = diamond()
        net.fail_link("origin", "left")
        net.restore_link("left", "origin")  # swapped argument order
        assert net.neighbors("origin")["left"] is Relationship.PROVIDER
        assert net.neighbors("left")["origin"] is Relationship.CUSTOMER

    def test_restore_unfailed_link_rejected(self):
        net = diamond()
        with pytest.raises(KeyError):
            net.restore_link("origin", "left")

    def test_refail_after_restore(self):
        net = diamond()
        net.fail_link("origin", "left")
        net.restore_link("origin", "left")
        net.fail_link("origin", "left")
        assert "left" not in net.neighbors("origin")


class TestNodeFailure:
    def test_fail_node_cuts_all_links(self):
        net = diamond()
        net.announce("origin", PFX)
        net.converge()
        gone = net.fail_node("origin")
        assert set(gone) == {"left", "right"}
        net.converge()
        for node in ("left", "right", "top"):
            assert net.router(node).best_route(PFX) is None

    def test_failed_node_keeps_local_state(self):
        net = diamond()
        net.announce("origin", PFX)
        net.converge()
        net.fail_node("origin")
        net.converge()
        assert net.router("origin").best_route(PFX) is not None
        assert net.neighbors("origin") == {}

    def test_transit_node_failure_reroutes(self):
        net = diamond()
        net.announce("origin", PFX)
        net.converge()
        net.fail_node("left")
        net.converge()
        route = net.router("top").best_route(PFX)
        assert route is not None
        assert route.learned_from == "right"


class TestSessionTeardownSemantics:
    def test_closed_session_sends_nothing(self):
        net = build_line_network(3)
        net.announce("r0", PFX)
        net.converge()
        session = net.router("r1").sessions["r2"]
        before = session.sent_updates
        session.closed = True
        net.withdraw("r0", PFX)
        net.converge()
        assert session.sent_updates == before

    def test_remove_unknown_session_rejected(self):
        net = build_line_network(2)
        with pytest.raises(KeyError):
            net.router("r0").remove_session("ghost")


class TestNodeFailureProvenance:
    def test_fail_node_forms_one_causal_chain(self):
        """Regression: ``fail_node`` used to allocate one root cause per
        adjacency, fragmenting a single crash into N unrelated chains.
        All link teardowns and their downstream updates must share one
        ``node-down`` root."""
        from repro import telemetry
        from repro.telemetry.trace import BgpUpdateSent, RootCause

        tracer = telemetry.TraceRecorder()
        with telemetry.using(telemetry.Telemetry(tracer=tracer)):
            net = diamond()
            net.announce("origin", PFX)
            net.converge()
            net.fail_node("origin")
            net.converge()
        roots = [e for e in tracer.events if isinstance(e, RootCause)]
        node_down = [e for e in roots if e.action == "node-down"]
        assert len(node_down) == 1
        assert node_down[0].target == "origin"
        # No per-link chains: the teardowns all inherit the node root.
        assert not any(e.action == "link-down" for e in roots)
        # Every update the crash triggered descends from that one root.
        updates = [
            e for e in tracer.events
            if isinstance(e, BgpUpdateSent) and e.t >= node_down[0].t
        ]
        assert updates
        assert {e.cause for e in updates} == {node_down[0].cause}

    def test_fail_isolated_node_allocates_no_cause(self):
        net = BgpNetwork(seed=0, default_timing=FAST_TIMING)
        net.add_router("lone", 1)
        before = net._next_cause
        assert net.fail_node("lone") == []
        assert net._next_cause == before


class TestStaleMraiTimerAcrossReset:
    def test_reset_session_leaves_old_timer_inert(self):
        """Network-level regression for the MRAI epoch guard: a timer
        armed before ``reset_session`` must not flush the reopened
        session's pending updates when it fires (seed chosen so the
        stale timer expires well before the legitimate one)."""
        timing = SessionTiming(latency=0.05, jitter=0.0, mrai=10.0, busy_prob=0.0)
        net = BgpNetwork(seed=9, default_timing=timing)
        net.add_router("a", 1)
        net.add_router("b", 2)
        net.add_peering("a", "b")

        def mrai_timers():
            return sorted(
                when for (when, _, cb) in net.engine._queue
                if "mrai" in getattr(cb, "__name__", "")
            )

        net.announce("a", PFX)              # flushed; timer armed
        (stale,) = mrai_timers()
        net.reset_session("a", "b")         # resync flushes; new timer armed
        fresh = [t for t in mrai_timers() if t != stale]
        assert len(fresh) == 1
        assert stale < fresh[0] - 0.5, "seed no longer orders the timers; pick another"
        net.announce("a", PFX2)             # pending under the new timer
        session = net.router("a").sessions["b"]
        assert session._pending
        sent_before = session.sent_updates
        net.engine.run_until(stale + 0.1)   # stale timer fires here
        assert session.sent_updates == sent_before
        assert session._pending and session._mrai_running
        assert net.router("b").best_route(PFX2) is None
        net.converge()
        assert net.router("b").best_route(PFX2) is not None
