"""Unit tests for update messages."""

from repro.bgp.messages import Announcement, Update, Withdrawal
from repro.net.addr import IPv4Prefix

PFX = IPv4Prefix.parse("184.164.244.0/24")


class TestMessages:
    def test_announcement_fields(self):
        a = Announcement(sender="s", prefix=PFX, as_path=(1, 2), origin_node="o")
        assert a.sender == "s"
        assert a.as_path == (1, 2)
        assert a.med == 0  # MED defaults to unset/zero

    def test_announcement_with_med(self):
        a = Announcement(sender="s", prefix=PFX, as_path=(1,), origin_node="o", med=70)
        assert a.med == 70

    def test_withdrawal_fields(self):
        w = Withdrawal(sender="s", prefix=PFX)
        assert w.prefix == PFX

    def test_messages_hashable(self):
        a1 = Announcement(sender="s", prefix=PFX, as_path=(1,), origin_node="o")
        a2 = Announcement(sender="s", prefix=PFX, as_path=(1,), origin_node="o")
        assert a1 == a2
        assert len({a1, a2}) == 1

    def test_update_union_covers_both(self):
        updates: list[Update] = [
            Announcement(sender="s", prefix=PFX, as_path=(1,), origin_node="o"),
            Withdrawal(sender="s", prefix=PFX),
        ]
        assert all(u.prefix == PFX for u in updates)
