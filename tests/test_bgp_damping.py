"""Tests for route flap damping (RFC 2439)."""

import pytest

from repro.bgp.damping import DampingConfig, RouteDamping
from repro.bgp.engine import EventEngine
from repro.bgp.network import BgpNetwork
from repro.net.addr import IPv4Prefix

from tests.conftest import FAST_TIMING

PFX = IPv4Prefix.parse("184.164.244.0/24")

#: Aggressive config so tests trigger suppression with few flaps and
#: short sim times.
FAST_DAMPING = DampingConfig(
    penalty_per_flap=1000.0,
    suppress_threshold=1500.0,
    reuse_threshold=750.0,
    half_life=30.0,
    max_penalty=4000.0,
)


class TestDampingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DampingConfig(half_life=0.0)
        with pytest.raises(ValueError):
            DampingConfig(reuse_threshold=3000.0, suppress_threshold=2000.0)
        with pytest.raises(ValueError):
            DampingConfig(penalty_per_flap=0.0)


class TestRouteDampingUnit:
    def make(self):
        engine = EventEngine()
        released = []
        damping = RouteDamping(engine, FAST_DAMPING, on_release=released.append)
        return engine, damping, released

    def test_single_flap_not_suppressed(self):
        engine, damping, _ = self.make()
        damping.record_flap(PFX, "n1")
        assert not damping.is_suppressed(PFX, "n1")
        assert damping.penalty(PFX, "n1") == pytest.approx(1000.0)

    def test_second_flap_suppresses(self):
        engine, damping, _ = self.make()
        damping.record_flap(PFX, "n1")
        damping.record_flap(PFX, "n1")
        assert damping.is_suppressed(PFX, "n1")
        assert damping.suppressions == 1

    def test_penalty_decays(self):
        engine, damping, _ = self.make()
        damping.record_flap(PFX, "n1")
        engine.schedule(30.0, lambda: None)
        engine.run_until_idle()
        assert damping.penalty(PFX, "n1") == pytest.approx(500.0, rel=0.01)

    def test_release_fires_after_decay(self):
        engine, damping, released = self.make()
        damping.record_flap(PFX, "n1")
        damping.record_flap(PFX, "n1")
        assert damping.is_suppressed(PFX, "n1")
        engine.run_until_idle()
        assert not damping.is_suppressed(PFX, "n1")
        assert released == [PFX]
        # penalty 2000 -> reuse 750 takes half_life*log2(2000/750) ~= 42s
        assert 40.0 < engine.now < 50.0

    def test_penalty_capped(self):
        engine, damping, _ = self.make()
        for _ in range(10):
            damping.record_flap(PFX, "n1")
        assert damping.penalty(PFX, "n1") <= FAST_DAMPING.max_penalty

    def test_per_neighbor_isolation(self):
        engine, damping, _ = self.make()
        damping.record_flap(PFX, "n1")
        damping.record_flap(PFX, "n1")
        assert damping.suppressed_neighbors(PFX) == {"n1"}
        assert not damping.is_suppressed(PFX, "n2")

    def test_flaps_counted(self):
        engine, damping, _ = self.make()
        damping.record_flap(PFX, "n1")
        damping.record_flap(PFX, "n2")
        assert damping.flaps == 2

    def test_pending_events_bounded_under_sustained_flapping(self):
        """Sustained flapping must not accumulate release callbacks:
        at most one release event per suppressed (prefix, neighbor) is
        outstanding, however many flaps arrive."""
        engine, damping, _ = self.make()
        for _ in range(200):
            damping.record_flap(PFX, "n1")
        assert damping.is_suppressed(PFX, "n1")
        assert engine.pending <= 1

    def test_stale_release_is_inert_across_cycles(self):
        """Flapping across suppress/release cycles: stale callbacks from
        earlier generations return without touching newer state, the
        event count stays bounded, and the final release still fires."""
        engine, damping, released = self.make()
        for _ in range(6):
            damping.record_flap(PFX, "n1")
            damping.record_flap(PFX, "n1")
            assert damping.is_suppressed(PFX, "n1")
            assert engine.pending <= 1
            engine.run_until_idle()  # decay out; release fires
            assert not damping.is_suppressed(PFX, "n1")
        assert len(released) == 6

    def test_release_timed_from_decayed_penalty(self):
        """A release scheduled long after the last flap must measure the
        decay from the *current* penalty, not the stored one."""
        engine, damping, released = self.make()
        damping.record_flap(PFX, "n1")
        damping.record_flap(PFX, "n1")
        engine.run_until_idle()
        assert released == [PFX]
        # Suppress again on top of the residual 750: two flaps reach
        # 2750, which decays to the 750 reuse level in
        # 30 * log2(2750/750) ~= 56 s. The reschedule inside
        # _maybe_release must measure from the *decayed* penalty;
        # measuring from the stored one overshoots to ~90 s.
        start = engine.now
        damping.record_flap(PFX, "n1")
        damping.record_flap(PFX, "n1")
        engine.run_until_idle()
        assert len(released) == 2
        assert 54.0 < engine.now - start < 62.0


class TestDampingInNetwork:
    def flapping_network(self) -> BgpNetwork:
        net = BgpNetwork(seed=0, default_timing=FAST_TIMING, damping=FAST_DAMPING)
        net.add_router("origin", 1)
        net.add_router("mid", 2)
        net.add_router("edge", 3)
        net.add_provider("origin", "mid")
        net.add_provider("edge", "mid")
        return net

    def test_initial_announcement_is_not_a_flap(self):
        net = self.flapping_network()
        net.announce("origin", PFX)
        net.converge()
        assert net.router("mid").damping.flaps == 0
        assert net.router("edge").best_route(PFX) is not None

    def flap_quickly(self, net, rounds=3):
        """Announce/withdraw in rapid succession, keeping sim time short
        so release timers don't drain between flaps."""
        for _ in range(rounds):
            net.announce("origin", PFX)
            net.run_for(0.5)
            net.withdraw("origin", PFX)
            net.run_for(0.5)

    def test_flapping_origin_gets_suppressed(self):
        net = self.flapping_network()
        self.flap_quickly(net)
        mid = net.router("mid")
        assert mid.damping.flaps >= 3
        assert mid.damping.suppressions >= 1
        # Re-announce: the suppressed route is ignored by the decision
        # process even though it sits in the Adj-RIB-In.
        net.announce("origin", PFX)
        net.run_for(1.0)
        assert mid.adj_rib_in.route_from(PFX, "origin") is not None
        assert mid.best_route(PFX) is None

    def test_suppressed_route_released_after_decay(self):
        net = self.flapping_network()
        self.flap_quickly(net)
        net.announce("origin", PFX)
        net.converge()  # runs the release timers dry
        assert net.router("mid").best_route(PFX) is not None
        assert net.router("edge").best_route(PFX) is not None

    def test_stable_prefix_unaffected(self):
        """Damping must be invisible for well-behaved announcements."""
        net = self.flapping_network()
        net.announce("origin", PFX)
        net.converge()
        net.run_for(100.0)
        assert net.router("edge").best_route(PFX) is not None
        assert net.router("mid").damping.suppressions == 0

    def test_topology_build_network_passthrough(self, small_topology):
        network = small_topology.build_network(
            seed=1, timing=FAST_TIMING, damping=FAST_DAMPING
        )
        some_router = network.router(network.nodes()[0])
        assert some_router.damping is not None


class TestSuppressedIndexEquivalence:
    """The per-prefix ``_suppressed`` index is an optimization of what
    used to be a scan over all flap state; it must agree with the
    brute-force definition at every point of a random flap/decay
    schedule."""

    def brute_force(self, damping: RouteDamping, prefix: IPv4Prefix) -> set:
        return {
            neighbor
            for (pfx, neighbor), state in damping._state.items()
            if pfx == prefix and state.suppressed
        }

    def test_index_matches_brute_force_scan(self):
        import random

        engine = EventEngine()
        damping = RouteDamping(engine, FAST_DAMPING, on_release=lambda p: None)
        rng = random.Random(1234)
        prefixes = [IPv4Prefix.parse(f"10.{i}.0.0/16") for i in range(4)]
        neighbors = ["n1", "n2", "n3"]
        for _ in range(400):
            if rng.random() < 0.7:
                damping.record_flap(rng.choice(prefixes), rng.choice(neighbors))
            else:
                # Let decay and release timers run.
                engine.run_until(engine.now + rng.uniform(0.0, 25.0))
            for prefix in prefixes:
                assert damping.suppressed_neighbors(prefix) == self.brute_force(
                    damping, prefix
                )
        # Drain: every suppression eventually releases and the index
        # empties with the state.
        engine.run_until_idle()
        for prefix in prefixes:
            assert damping.suppressed_neighbors(prefix) == set()
        assert damping._suppressed == {}

    def test_index_isolated_per_prefix(self):
        engine = EventEngine()
        damping = RouteDamping(engine, FAST_DAMPING, on_release=lambda p: None)
        other = IPv4Prefix.parse("184.164.245.0/24")
        for _ in range(2):
            damping.record_flap(PFX, "n1")
            damping.record_flap(other, "n2")
        assert damping.suppressed_neighbors(PFX) == {"n1"}
        assert damping.suppressed_neighbors(other) == {"n2"}
        # Returned sets are copies: mutating one must not corrupt the index.
        damping.suppressed_neighbors(PFX).add("intruder")
        assert damping.suppressed_neighbors(PFX) == {"n1"}
