"""Tests for client-to-site performance analysis."""

import pytest

from repro.measurement.catchment import anycast_catchment
from repro.measurement.performance import (
    ClientPerformance,
    PerformanceReport,
    SiteRttTable,
    analyze_performance,
)

from tests.conftest import FAST_TIMING


@pytest.fixture(scope="module")
def rtt_table(deployment):
    return SiteRttTable(deployment.topology, deployment)


@pytest.fixture(scope="module")
def anycast_report(deployment, rtt_table):
    catchment = anycast_catchment(deployment.topology, deployment, timing=FAST_TIMING)
    return analyze_performance(deployment.topology, deployment, catchment, rtt_table)


class TestSiteRttTable:
    def test_rtt_positive(self, deployment, rtt_table):
        client = deployment.topology.web_client_ases()[0].node_id
        rtt = rtt_table.rtt_ms(client, "sea1")
        assert rtt is not None and rtt > 0

    def test_best_site_is_minimum(self, deployment, rtt_table):
        client = deployment.topology.web_client_ases()[0].node_id
        best_site, best_rtt = rtt_table.best_site(client)
        for site in deployment.site_names:
            rtt = rtt_table.rtt_ms(client, site)
            if rtt is not None:
                assert best_rtt <= rtt

    def test_regional_best_site(self, deployment, rtt_table):
        """A us-west client's best site must be in the western US."""
        client = next(
            info.node_id
            for info in deployment.topology.web_client_ases()
            if info.location.region == "us-west"
        )
        best_site, _ = rtt_table.best_site(client)
        assert deployment.sites[best_site].region in ("us-west", "us-mountain")


class TestAnycastSuboptimality:
    def test_some_clients_suboptimal(self, anycast_report):
        """§2's premise: anycast routes a subset of clients to
        suboptimal sites."""
        assert anycast_report.suboptimal_fraction() > 0.1

    def test_not_all_clients_suboptimal(self, anycast_report):
        assert anycast_report.suboptimal_fraction() < 0.9

    def test_inflation_nonnegative(self, anycast_report):
        assert all(v >= 0 for v in anycast_report.inflation_values())

    def test_inflated_fraction_decreases_with_threshold(self, anycast_report):
        f5 = anycast_report.inflated_fraction(5.0)
        f50 = anycast_report.inflated_fraction(50.0)
        assert f50 <= f5

    def test_optimal_assignment_has_no_inflation(self, deployment, rtt_table):
        """Steering every client to its best site (unicast-grade control)
        zeroes the inflation -- the control half of the trade-off."""
        clients = [
            info.node_id for info in deployment.topology.web_client_ases()
        ][:20]
        optimal = {c: rtt_table.best_site(c)[0] for c in clients}
        report = analyze_performance(
            deployment.topology, deployment, optimal, rtt_table
        )
        assert report.suboptimal_fraction() == 0.0
        assert all(v == 0.0 for v in report.inflation_values())


class TestReportEdgeCases:
    def test_empty_report(self):
        report = PerformanceReport()
        assert report.suboptimal_fraction() == 0.0
        assert report.inflated_fraction() == 0.0

    def test_unserved_client_excluded(self):
        report = PerformanceReport(
            clients=[
                ClientPerformance(
                    node="x", served_by=None, served_rtt_ms=None,
                    best_site="ams", best_rtt_ms=10.0,
                )
            ]
        )
        assert report.measured == []
