"""Tests for declarative fault plans (validation + JSON round-trip)."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FibDelay,
    LinkFlap,
    MessageLoss,
    PartialSiteFailure,
    SessionReset,
    load_fault_plan,
)


def full_plan() -> FaultPlan:
    return FaultPlan(
        seed=42,
        faults=(
            LinkFlap(at=1.0, a="r0", b="r1", down_for=5.0, repeat=2, period=20.0),
            SessionReset(at=2.0, a="r1", b="r2"),
            MessageLoss(at=3.0, a="r0", b="r1", duration=10.0, loss_prob=0.5),
            FibDelay(at=4.0, node="r2", duration=10.0, extra_delay=2.0),
            PartialSiteFailure(at=5.0, node="r1", fraction=0.5, down_for=5.0),
        ),
    )


class TestValidation:
    def test_all_kinds_registered(self):
        assert set(FAULT_KINDS) == {
            "link_flap", "session_reset", "message_loss", "fib_delay",
            "partial_site_failure", "brownout",
        }

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SessionReset(at=-1.0, a="r0", b="r1")

    def test_link_flap_needs_both_ends(self):
        with pytest.raises(ValueError, match="both link ends"):
            LinkFlap(at=0.0, a="r0")

    def test_link_flap_overlapping_repeats_rejected(self):
        with pytest.raises(ValueError, match="period"):
            LinkFlap(at=0.0, a="r0", b="r1", down_for=10.0, repeat=3, period=5.0)

    def test_message_loss_zero_probabilities_rejected(self):
        with pytest.raises(ValueError, match="does nothing"):
            MessageLoss(at=0.0, a="r0", b="r1")

    def test_message_loss_probability_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            MessageLoss(at=0.0, a="r0", b="r1", loss_prob=1.5)

    def test_fib_delay_requires_positive_extra(self):
        with pytest.raises(ValueError, match="extra_delay"):
            FibDelay(at=0.0, node="r0", extra_delay=0.0)

    def test_partial_fraction_must_be_partial(self):
        with pytest.raises(ValueError, match="fraction"):
            PartialSiteFailure(at=0.0, node="r0", fraction=1.0)
        with pytest.raises(ValueError, match="fraction"):
            PartialSiteFailure(at=0.0, node="r0", fraction=0.0)


class TestSerialization:
    def test_json_round_trip(self):
        plan = full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "meteor_strike", "at": 1.0}]}
            )

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"faults": [], "color": "red"})

    def test_bad_field_reports_index_and_kind(self):
        with pytest.raises(ValueError, match=r"faults\[0\] \(link_flap\)"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "link_flap", "at": 1.0, "a": "r0",
                             "b": "r1", "down_for": -1.0}]}
            )

    def test_empty_plan(self):
        plan = FaultPlan.from_dict({})
        assert len(plan) == 0
        assert plan.seed == 0


class TestLoading:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(full_plan().to_json(), encoding="utf-8")
        assert load_fault_plan(path) == full_plan()

    def test_invalid_json_mentions_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ValueError, match="broken.json"):
            load_fault_plan(path)

    def test_example_plan_parses(self):
        from pathlib import Path

        example = Path(__file__).resolve().parent.parent / "examples" / "faultplan.json"
        plan = load_fault_plan(example)
        assert len(plan) == 6

    def test_plans_are_picklable(self):
        """Plans ride inside RotationDrill into sweep worker processes."""
        import pickle

        plan = full_plan()
        assert pickle.loads(pickle.dumps(plan)) == plan
