"""Tests for BIRD configuration rendering."""

import pytest

from repro.configgen.bird import generate_bird_config
from repro.core.techniques import (
    Anycast,
    Combined,
    ProactiveMed,
    ProactivePrepending,
    ProactiveSuperprefix,
    ReactiveAnycast,
    Unicast,
)
from repro.topology.testbed import CDN_ASN, SPECIFIC_PREFIX, SUPERPREFIX


class TestOriginations:
    def test_unicast_only_specific_site_announces(self, deployment):
        specific = generate_bird_config(deployment, Unicast(), "sea1", "sea1")
        other = generate_bird_config(deployment, Unicast(), "ams", "sea1")
        assert str(SPECIFIC_PREFIX) in specific.normal
        assert str(SPECIFIC_PREFIX) not in other.normal

    def test_anycast_everyone_announces(self, deployment):
        for site in ("sea1", "ams"):
            config = generate_bird_config(deployment, Anycast(), site, "sea1")
            assert str(SPECIFIC_PREFIX) in config.normal

    def test_superprefix_roles(self, deployment):
        specific = generate_bird_config(deployment, ProactiveSuperprefix(), "sea1", "sea1")
        other = generate_bird_config(deployment, ProactiveSuperprefix(), "ams", "sea1")
        assert str(SPECIFIC_PREFIX) in specific.normal
        assert str(SUPERPREFIX) in specific.normal
        assert str(SPECIFIC_PREFIX) not in other.normal
        assert str(SUPERPREFIX) in other.normal

    def test_prepending_count(self, deployment):
        config = generate_bird_config(
            deployment, ProactivePrepending(3), "ams", "sea1"
        )
        assert config.normal.count(f"bgp_path.prepend({CDN_ASN});") == 3
        specific = generate_bird_config(
            deployment, ProactivePrepending(3), "sea1", "sea1"
        )
        assert "bgp_path.prepend" not in specific.normal

    def test_med_values(self, deployment):
        backup = generate_bird_config(deployment, ProactiveMed(100), "ams", "sea1")
        assert "bgp_med = 100;" in backup.normal
        intended = generate_bird_config(deployment, ProactiveMed(100), "sea1", "sea1")
        assert "bgp_med = 0;" in intended.normal


class TestEmergencyVariants:
    def test_reactive_other_sites_get_emergency_config(self, deployment):
        config = generate_bird_config(deployment, ReactiveAnycast(), "ams", "sea1")
        assert str(SPECIFIC_PREFIX) not in config.normal
        assert config.emergency is not None
        assert str(SPECIFIC_PREFIX) in config.emergency
        assert "emergency: sea1 failed" in config.emergency

    def test_reactive_specific_site_has_no_emergency(self, deployment):
        config = generate_bird_config(deployment, ReactiveAnycast(), "sea1", "sea1")
        assert config.emergency is None

    def test_combined_emergency_adds_specific(self, deployment):
        config = generate_bird_config(deployment, Combined(), "ams", "sea1")
        assert str(SUPERPREFIX) in config.normal
        assert str(SPECIFIC_PREFIX) not in config.normal
        assert str(SPECIFIC_PREFIX) in config.emergency

    def test_passive_techniques_have_no_emergency(self, deployment):
        for technique in (Unicast(), Anycast(), ProactivePrepending(3)):
            config = generate_bird_config(deployment, technique, "ams", "sea1")
            assert config.emergency is None


class TestStructure:
    def test_one_bgp_protocol_per_neighbor(self, deployment):
        config = generate_bird_config(deployment, Anycast(), "ams", "sea1")
        spec = deployment.sites["ams"]
        assert config.normal.count("protocol bgp ") == len(spec.providers) + len(spec.peers)

    def test_neighbor_asns_match_topology(self, deployment):
        config = generate_bird_config(deployment, Anycast(), "sea1", "sea1")
        provider = deployment.sites["sea1"].providers[0]
        asn = deployment.topology.ases[provider].asn
        assert f"as {asn};" in config.normal

    def test_local_asn_everywhere(self, deployment):
        config = generate_bird_config(deployment, Anycast(), "msn", "sea1")
        assert f"local as {CDN_ASN};" in config.normal

    def test_export_filter_rejects_by_default(self, deployment):
        config = generate_bird_config(deployment, Unicast(), "ams", "sea1")
        assert "filter cdn_export" in config.normal
        assert "reject;" in config.normal

    def test_unknown_site_rejected(self, deployment):
        with pytest.raises(KeyError):
            generate_bird_config(deployment, Anycast(), "lhr", "sea1")
        with pytest.raises(KeyError):
            generate_bird_config(deployment, Anycast(), "ams", "lhr")

    def test_all_sites_render_for_all_techniques(self, deployment):
        techniques = [
            Unicast(), Anycast(), ProactiveSuperprefix(), ReactiveAnycast(),
            ProactivePrepending(5), ProactiveMed(50), Combined(),
        ]
        for technique in techniques:
            for site in deployment.site_names:
                config = generate_bird_config(deployment, technique, site, "sea1")
                assert config.normal.startswith("# BIRD 2.x configuration")
