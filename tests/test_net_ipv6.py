"""Tests for IPv6 addressing and the family-generic LPM trie.

The paper's techniques are family-agnostic ("a distinct prefix (e.g.,
/24 or /48)"); these tests verify the substrate handles /48-style IPv6
deployments end to end at the addressing/FIB layer.
"""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import IPv6Address, IPv6Prefix
from repro.net.lpm import LpmTrie


class TestIPv6Address:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("::", 0),
            ("::1", 1),
            ("2001:db8::", 0x20010DB8 << 96),
            ("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", (1 << 128) - 1),
            ("2001:db8:0:0:0:0:0:1", (0x20010DB8 << 96) + 1),
        ],
    )
    def test_parse(self, text, value):
        assert IPv6Address.parse(text).value == value

    @pytest.mark.parametrize(
        "bad",
        ["", ":::", "2001::db8::1", "12345::", "g::", "1:2:3:4:5:6:7", "1:2:3:4:5:6:7:8:9"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            IPv6Address.parse(bad)

    def test_canonical_formatting(self):
        assert str(IPv6Address.parse("2001:0db8:0000:0000:0000:0000:0000:0001")) == "2001:db8::1"
        assert str(IPv6Address.parse("::")) == "::"
        assert str(IPv6Address.parse("1:0:0:2:0:0:0:3")) == "1:0:0:2::3"

    def test_no_compression_for_single_zero(self):
        assert str(IPv6Address.parse("1:0:2:3:4:5:6:7")) == "1:0:2:3:4:5:6:7"

    def test_ordering(self):
        assert IPv6Address.parse("::1") < IPv6Address.parse("::2")

    def test_bits(self):
        assert IPv6Address.parse("::1").bits == 128

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_str_parse_roundtrip(self, value):
        address = IPv6Address(value)
        assert IPv6Address.parse(str(address)) == address


class TestIPv6Prefix:
    def test_parse_48(self):
        """The per-site prefix size the paper names for IPv6."""
        prefix = IPv6Prefix.parse("2001:db8:1::/48")
        assert prefix.length == 48
        assert str(prefix) == "2001:db8:1::/48"

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            IPv6Prefix.parse("2001:db8::1/48")

    def test_contains(self):
        prefix = IPv6Prefix.parse("2001:db8:1::/48")
        assert prefix.contains(IPv6Address.parse("2001:db8:1::42"))
        assert not prefix.contains(IPv6Address.parse("2001:db8:2::42"))

    def test_covers_super_and_subnets(self):
        site = IPv6Prefix.parse("2001:db8:1::/48")
        covering = site.supernet(47)
        assert covering.covers(site)
        subnets = IPv6Prefix.parse("2001:db8::/47").subnets(48)
        assert site in subnets

    def test_subnet_enumeration_guard(self):
        with pytest.raises(ValueError):
            IPv6Prefix.parse("2001:db8::/32").subnets(128)

    def test_address_indexing(self):
        prefix = IPv6Prefix.parse("2001:db8:1::/48")
        assert str(prefix.address(1)) == "2001:db8:1::1"

    def test_of_masks_host_bits(self):
        prefix = IPv6Prefix.of(IPv6Address.parse("2001:db8:1::ffff"), 48)
        assert str(prefix) == "2001:db8:1::/48"


class TestDualStackTrie:
    def test_v6_trie_lpm(self):
        """The proactive-superprefix mechanism at /47 vs /48."""
        trie = LpmTrie(bits=128)
        site = IPv6Prefix.parse("2001:db8::/48")
        covering = IPv6Prefix.parse("2001:db8::/47")
        trie.insert(covering, "backup")
        trie.insert(site, "specific")
        probe = IPv6Address.parse("2001:db8::10")
        assert trie.lookup(probe)[1] == "specific"
        trie.remove(site)
        assert trie.lookup(probe)[1] == "backup"

    def test_family_mixing_rejected(self):
        from repro.net.addr import IPv4Prefix

        trie = LpmTrie(bits=128)
        with pytest.raises(ValueError, match="family mismatch"):
            trie.insert(IPv4Prefix.parse("10.0.0.0/8"), "x")

    def test_v4_trie_rejects_v6(self):
        trie = LpmTrie()
        with pytest.raises(ValueError, match="family mismatch"):
            trie.insert(IPv6Prefix.parse("2001:db8::/48"), "x")

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            LpmTrie(bits=64)

    def test_v6_items_roundtrip(self):
        trie = LpmTrie(bits=128)
        prefixes = [
            IPv6Prefix.parse("2001:db8::/48"),
            IPv6Prefix.parse("2001:db8:1::/48"),
            IPv6Prefix.parse("2001:db8::/32"),
        ]
        for i, prefix in enumerate(prefixes):
            trie.insert(prefix, i)
        assert dict(trie.items()) == {p: i for i, p in enumerate(prefixes)}


class TestV6BgpEndToEnd:
    def test_bgp_carries_v6_prefixes(self):
        """The routing substrate is family-agnostic: announcing a /48
        propagates and installs FIB state exactly like a /24."""
        from repro.bgp.network import BgpNetwork
        from tests.conftest import FAST_TIMING

        net = BgpNetwork(seed=0, default_timing=FAST_TIMING)
        for i, name in enumerate(("site", "transit", "client")):
            router = net.add_router(name, 100 + i)
            router.fib = LpmTrie(bits=128)
        net.add_provider("site", "transit")
        net.add_provider("client", "transit")
        prefix = IPv6Prefix.parse("2001:db8:1::/48")
        net.announce("site", prefix)
        net.converge()
        route = net.router("client").best_route(prefix)
        assert route is not None
        assert route.as_path == (101, 100)
        assert net.next_hop("client", IPv6Address.parse("2001:db8:1::10")) == "transit"
