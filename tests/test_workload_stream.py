"""The request stream: seed stability, laziness, and popularity skew."""

import itertools
import resource

import pytest

from repro.workload import (
    RequestStream,
    WorkloadProfile,
    builtin_profile,
    stream_digest,
)

CLIENTS = [f"client-{i}" for i in range(40)]


def make_stream(seed=7, duration=60.0, profile=None):
    profile = profile or WorkloadProfile(name="t", base_rps=50.0)
    return RequestStream(profile, CLIENTS, duration, seed)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        assert stream_digest(make_stream()) == stream_digest(make_stream())

    def test_reiterating_one_stream_is_stable(self):
        stream = make_stream()
        assert list(stream) == list(stream)

    def test_different_seed_differs(self):
        assert stream_digest(make_stream(seed=1)) != stream_digest(make_stream(seed=2))

    def test_seed_salt_decorrelates(self):
        base = WorkloadProfile(name="t", base_rps=50.0)
        salted = WorkloadProfile(name="t", base_rps=50.0, seed_salt=99)
        a = stream_digest(make_stream(profile=base))
        b = stream_digest(make_stream(profile=salted))
        assert a != b

    def test_arrivals_sorted_and_bounded(self):
        times = [r.t for r in make_stream(duration=30.0)]
        assert times == sorted(times)
        assert all(0 <= t < 30.0 for t in times)


class TestLaziness:
    def test_iterator_not_materialized(self):
        # A 10M-request window must cost nothing until consumed.
        profile = WorkloadProfile(name="big", base_rps=10_000.0)
        stream = RequestStream(profile, CLIENTS, 1_000.0, 3)
        first_three = list(itertools.islice(iter(stream), 3))
        assert len(first_three) == 3

    def test_million_requests_bounded_memory(self):
        """The ISSUE acceptance bound: ~1M requests, RSS growth < 50 MB."""
        profile = builtin_profile("flash-crowd")
        # ~200 rps base plus the crowd bump: >1M requests over 5000s.
        stream = RequestStream(profile, CLIENTS, 5000.0, 11)
        before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        count = 0
        for _ in stream:
            count += 1
        after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        assert count > 1_000_000
        # ru_maxrss is KiB on Linux.
        assert (after - before) < 50 * 1024

    def test_zero_rate_yields_nothing(self):
        profile = WorkloadProfile(name="t", base_rps=0.0)
        assert list(RequestStream(profile, CLIENTS, 60.0, 1)) == []


class TestPopularity:
    def test_zipf_head_heavier_than_tail(self):
        counts = {}
        for request in make_stream(duration=200.0):
            counts[request.client] = counts.get(request.client, 0) + 1
        assert counts[CLIENTS[0]] > counts.get(CLIENTS[-1], 0) * 2

    def test_contents_within_catalogue(self):
        profile = WorkloadProfile(name="t", base_rps=50.0, n_contents=10)
        contents = {r.content for r in make_stream(profile=profile)}
        assert contents and all(0 <= c < 10 for c in contents)

    def test_empty_clients_rejected(self):
        with pytest.raises(ValueError):
            RequestStream(WorkloadProfile(name="t"), [], 60.0, 1)


class TestDigest:
    def test_digest_format(self):
        digest = stream_digest(make_stream(duration=10.0))
        count, _, crc = digest.partition(":")
        assert count.isdigit() and len(crc) == 8
