"""CLI tests for the observability trio: explain, report, profile.

Unit-level tests drive the commands on synthetic files; the end-to-end
test records a real ``failover --trace --profile`` run and pushes its
outputs through all three commands plus the filtered summarizer.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import EventProfiler, LEDGER_SCHEMA
from repro.telemetry import (
    BgpUpdateSent,
    FibInstalled,
    PhaseStart,
    ProbeLost,
    ProbeReply,
    ProbeSent,
    RootCause,
    write_jsonl,
)

PREFIX = "184.164.254.0/24"


def write_trace(path):
    """A minimal but complete trace: one chain, one outage."""
    events = [
        PhaseStart(t=0.0, name="fail-probe", tags={"technique": "anycast", "site": "sea1"}),
        RootCause(t=10.0, cause=1, action="site-fail", target="sea1"),
        BgpUpdateSent(
            t=11.0, sender="site:sea1", receiver="tr-0", prefix=PREFIX,
            update="withdraw", cause=1,
        ),
        FibInstalled(t=12.0, node="tr-0", prefix=PREFIX, next_hop=None, cause=1),
        ProbeSent(t=10.0, target="10.0.0.1", seq=0),
        ProbeLost(t=10.5, target="10.0.0.1", seq=0, reason="no-route"),
        ProbeSent(t=20.0, target="10.0.0.1", seq=1),
        ProbeReply(t=20.1, target="10.0.0.1", seq=1, site="msn"),
    ]
    write_jsonl(path, events)
    return path


def write_profile(path):
    profiler = EventProfiler()
    profiler.record_callback("Session._mrai_expired", 0.5)
    profiler.record_phase("fail-probe", 1.0, 120.0)
    path.write_text(json.dumps(profiler.state()))
    return path


class TestParser:
    def test_obs_commands_registered(self):
        parser = build_parser()
        for argv in (
            ["explain", "t.jsonl"],
            ["report", "t.jsonl"],
            ["profile", "p.json"],
        ):
            assert callable(parser.parse_args(argv).func)

    def test_explain_filters_parse(self):
        args = build_parser().parse_args(
            ["explain", "t.jsonl", "--prefix", PREFIX, "--site", "sea1"]
        )
        assert args.prefix == PREFIX
        assert args.site == "sea1"

    def test_report_json_flag(self):
        args = build_parser().parse_args(["report", "t.jsonl", "--json", "-"])
        assert args.json_path == "-"

    def test_profile_top_flag(self):
        assert build_parser().parse_args(["profile", "p.json", "--top", "3"]).top == 3


class TestExplain:
    def test_resolves_chain(self, capsys, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl")
        assert main(["explain", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "cause 1: site-fail sea1" in out
        assert "withdrawal" in out

    def test_no_matching_chain_exits_one(self, capsys, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl")
        assert main(["explain", str(trace), "--site", "nowhere"]) == 1
        assert "0 causal chain(s)" in capsys.readouterr().out

    def test_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["explain", str(tmp_path / "absent.jsonl")]) == 2

    def test_invalid_file_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["explain", str(bad)]) == 2


class TestReport:
    def test_renders_ledger(self, capsys, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl")
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "availability ledger" in out
        assert "anycast" in out

    def test_json_to_file(self, capsys, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl")
        out_path = tmp_path / "ledger.json"
        assert main(["report", str(trace), "--json", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == LEDGER_SCHEMA
        assert doc["total_user_seconds_lost"] == 10.0

    def test_json_to_stdout_is_pure_json(self, capsys, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl")
        assert main(["report", str(trace), "--json", "-"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["total_outages"] == 1

    def test_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2


class TestProfileCommand:
    def test_renders_profile(self, capsys, tmp_path):
        path = write_profile(tmp_path / "p.json")
        assert main(["profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "_mrai_expired" in out
        assert "fail-probe" in out

    def test_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["profile", str(tmp_path / "absent.json")]) == 2

    def test_invalid_json_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert main(["profile", str(bad)]) == 2

    def test_wrong_schema_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "other.json"
        bad.write_text(json.dumps({"something": "else"}))
        assert main(["profile", str(bad)]) == 2


class TestEndToEnd:
    """One recorded run feeds every observability command."""

    @pytest.fixture(scope="class")
    def recorded_run(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("obs")
        trace, profile = tmp / "run.jsonl", tmp / "run-profile.json"
        code = main([
            "failover", "-t", "reactive-anycast", "-s", "msn",
            "--targets", "4", "--duration", "60",
            "--trace", str(trace), "--profile", str(profile),
        ])
        assert code == 0
        return trace, profile

    def test_explain_resolves_failover(self, capsys, recorded_run):
        trace, _ = recorded_run
        assert main(["explain", str(trace), "--site", "msn"]) == 0
        out = capsys.readouterr().out
        assert "site-fail msn" in out
        assert "fib-install" in out

    def test_report_accounts_downtime(self, capsys, recorded_run):
        trace, _ = recorded_run
        assert main(["report", str(trace), "--json", "-"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == LEDGER_SCHEMA
        assert "reactive-anycast" in doc["techniques"]

    def test_profile_renders_run(self, capsys, recorded_run):
        _, profile = recorded_run
        state = json.loads(profile.read_text())
        assert state["callbacks"], "profile JSON should attribute callbacks"
        assert main(["profile", str(profile), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "engine callbacks" in out
        assert "phases" in out

    def test_summarize_filters_narrow_the_trace(self, capsys, recorded_run):
        trace, _ = recorded_run
        assert main([
            "trace", "summarize", str(trace), "--kind", "bgp_update_sent",
        ]) == 0
        out = capsys.readouterr().out
        assert "filtered to" in out
        assert "bgp_update_sent" in out
