"""Workload profiles: shapes, loading, and PRE14x pre-flight checks."""

import json
import pathlib

import pytest

from repro.analysis.findings import Severity
from repro.analysis.preflight import check_workload
from repro.workload import (
    BUILTIN_PROFILES,
    PROFILE_SCHEMA,
    RateShape,
    WorkloadProfile,
    builtin_profile,
    load_profile,
    profile_from_dict,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "workload"


class TestRateShapes:
    def test_constant(self):
        shape = RateShape(kind="constant", factor=2.5)
        assert shape.value_at(0.0) == 2.5
        assert shape.value_at(1e6) == 2.5
        assert shape.peak() == 2.5

    def test_diurnal_oscillates_within_bounds(self):
        shape = RateShape(kind="diurnal", amplitude=0.5, period_s=100.0)
        values = [shape.value_at(t) for t in range(0, 100, 5)]
        assert max(values) > 1.2 and min(values) < 0.8
        assert all(v <= shape.peak() + 1e-12 for v in values)

    def test_flash_crowd_ramp_peak_decay(self):
        shape = RateShape(
            kind="flash-crowd", peak_multiplier=4.0,
            peak_at_s=100.0, ramp_s=20.0, decay_s=50.0,
        )
        assert shape.value_at(0.0) == 1.0
        assert shape.value_at(79.9) == 1.0
        assert shape.value_at(90.0) == pytest.approx(2.5)
        assert shape.value_at(100.0) == pytest.approx(4.0)
        assert shape.value_at(125.0) == pytest.approx(2.5)
        assert shape.value_at(151.0) == 1.0
        assert shape.peak() == 4.0

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown rate shape"):
            RateShape(kind="bogus").value_at(0.0)


class TestProfile:
    def test_rate_is_product_of_shapes(self):
        profile = WorkloadProfile(
            name="x", base_rps=100.0,
            shapes=(
                RateShape(kind="constant", factor=2.0),
                RateShape(kind="constant", factor=3.0),
            ),
        )
        assert profile.rate(0.0) == 600.0
        assert profile.max_rate() == 600.0

    def test_expected_requests_constant(self):
        profile = WorkloadProfile(name="x", base_rps=10.0)
        assert profile.expected_requests(100.0) == pytest.approx(1000.0)

    def test_builtins_resolve(self):
        for name in BUILTIN_PROFILES:
            profile = builtin_profile(name)
            assert profile.name == name
            assert not check_workload(profile)

    def test_unknown_builtin_raises(self):
        with pytest.raises(ValueError, match="unknown builtin"):
            builtin_profile("bogus")

    def test_to_dict_roundtrip(self):
        profile = builtin_profile("flash-crowd")
        clone = profile_from_dict(profile.to_dict())
        assert clone == profile


class TestLoading:
    def test_load_builtin_name(self):
        assert load_profile("diurnal").name == "diurnal"

    def test_load_json_file(self):
        profile = load_profile("examples/workload_flashcrowd.json")
        assert profile.name == "flashcrowd-example"
        assert profile.shapes[0].kind == "flash-crowd"
        assert not check_workload(profile)

    def test_missing_file_raises(self):
        with pytest.raises(ValueError, match="neither a builtin"):
            load_profile("no/such/profile.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_profile(str(path))

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown profile key"):
            profile_from_dict({"name": "x", "rps": 5})

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            profile_from_dict({"schema": "other/9", "name": "x"})

    def test_bool_is_not_numeric(self):
        with pytest.raises(ValueError, match="must be a number"):
            profile_from_dict({"name": "x", "base_rps": True})

    def test_out_of_range_values_load(self):
        # Value sanity is preflight's job, not the parser's.
        profile = profile_from_dict({"name": "x", "base_rps": -5.0})
        assert profile.base_rps == -5.0


class TestPreflight:
    def test_known_bad_fixture_yields_stable_codes(self):
        profile = load_profile(str(FIXTURES / "bad_negative_rate.json"))
        findings = check_workload(profile)
        codes = {f.code for f in findings}
        assert codes == {"PRE140", "PRE141", "PRE144"}
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_fixture_schema_tag_current(self):
        data = json.loads((FIXTURES / "bad_negative_rate.json").read_text())
        assert data["schema"] == PROFILE_SCHEMA

    def test_bad_tick_and_think(self):
        profile = WorkloadProfile(name="x", tick_s=0.0, think_time_s=-1.0)
        codes = [f.code for f in check_workload(profile)]
        assert codes == ["PRE142", "PRE142"]

    def test_unknown_shape_kind(self):
        profile = WorkloadProfile(name="x", shapes=(RateShape(kind="wat"),))
        codes = [f.code for f in check_workload(profile)]
        assert codes == ["PRE143"]

    def test_zipf_and_catalogue_errors(self):
        profile = WorkloadProfile(
            name="x", zipf_s=0.0, content_zipf_s=-1.0, n_contents=0
        )
        codes = [f.code for f in check_workload(profile)]
        assert codes == ["PRE141", "PRE141", "PRE141"]

    def test_volume_warning_only_when_valid(self):
        big = WorkloadProfile(name="x", base_rps=1e6)
        findings = check_workload(big, duration=600.0)
        assert [f.code for f in findings] == ["PRE145"]
        assert findings[0].severity is Severity.WARNING
        # A malformed profile never reaches the volume estimate.
        bad = WorkloadProfile(name="x", base_rps=-1e6)
        assert [f.code for f in check_workload(bad, duration=600.0)] == ["PRE140"]

    def test_none_profile_is_clean(self):
        assert check_workload(None) == []
