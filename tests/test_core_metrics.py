"""Tests for the §5.4.1 reconnection/failover metrics on synthetic data."""

from hypothesis import given, strategies as st

import pytest

from repro.core.metrics import TargetOutcome, bounce_statistics, outcomes_for_run, target_outcome
from repro.dataplane.capture import SiteCapture
from repro.dataplane.ping import ProbeLog, SentProbe
from repro.net.addr import IPv4Address

TARGET = IPv4Address.parse("10.0.0.1")
T_FAIL = 100.0


def scenario(statuses, interval=1.5, rtt=0.1):
    """Build a ProbeLog + SiteCapture from a list of per-probe outcomes:
    each entry is a site name (reply arrives) or None (lost)."""
    log = ProbeLog(target=TARGET, target_node="eye")
    capture = SiteCapture()
    for i, status in enumerate(statuses):
        sent_at = T_FAIL + i * interval
        log.sent.append(SentProbe(target=TARGET, seq=i + 1, sent_at=sent_at))
        if status is not None:
            capture.record(sent_at + rtt, status, TARGET, i + 1)
    return log, capture


class TestReconnection:
    def test_immediate_reply(self):
        log, capture = scenario(["ams", "ams", "ams"])
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        assert outcome.reconnection_s == pytest.approx(0.1)

    def test_reconnection_after_losses(self):
        log, capture = scenario([None, None, "ams", "ams"])
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        assert outcome.reconnection_s == pytest.approx(3.1)

    def test_never_reconnects(self):
        log, capture = scenario([None, None, None])
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        assert outcome.reconnection_s is None
        assert outcome.failover_s is None
        assert not outcome.stabilized


class TestFailover:
    def test_stable_from_start(self):
        log, capture = scenario(["ams", "ams", "ams"])
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        assert outcome.failover_s == outcome.reconnection_s
        assert outcome.final_site == "ams"

    def test_bounce_delays_failover(self):
        """§5.4.1: clients may bounce between sites after reconnecting;
        failover counts from the *last* change."""
        log, capture = scenario(["ams", "bos", "ams", "ams"])
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        assert outcome.reconnection_s == pytest.approx(0.1)
        assert outcome.failover_s == pytest.approx(3.1)
        assert outcome.bounces == 2

    def test_disconnection_delays_failover(self):
        log, capture = scenario(["ams", None, "ams", "ams"])
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        assert outcome.failover_s == pytest.approx(3.1)
        assert outcome.disconnections == 1

    def test_unstable_at_window_end_is_censored(self):
        log, capture = scenario(["ams", "ams", "ams", None])
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        assert outcome.reconnection_s == pytest.approx(0.1)
        assert outcome.failover_s is None

    def test_final_switch_counts(self):
        log, capture = scenario(["ams", "ams", "bos"])
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        assert outcome.final_site == "bos"
        assert outcome.failover_s == pytest.approx(3.1)

    def test_pre_failure_probes_ignored(self):
        log, capture = scenario(["ams", "ams"])
        log.sent.insert(0, SentProbe(target=TARGET, seq=0, sent_at=T_FAIL - 10))
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        assert outcome.reconnection_s == pytest.approx(0.1)

    def test_empty_log(self):
        log = ProbeLog(target=TARGET, target_node="eye")
        outcome = target_outcome(log, SiteCapture(), "sea1", T_FAIL)
        assert outcome.reconnection_s is None
        assert outcome.failover_s is None


class TestProperties:
    sites = st.one_of(st.none(), st.sampled_from(["ams", "bos", "slc"]))

    @given(st.lists(sites, min_size=1, max_size=30))
    def test_failover_never_before_reconnection(self, statuses):
        log, capture = scenario(statuses)
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        if outcome.failover_s is not None:
            assert outcome.reconnection_s is not None
            assert outcome.failover_s >= outcome.reconnection_s

    @given(st.lists(sites, min_size=1, max_size=30))
    def test_stabilized_iff_clean_suffix(self, statuses):
        log, capture = scenario(statuses)
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        assert outcome.stabilized == (statuses[-1] is not None)

    @given(st.lists(sites, min_size=1, max_size=30))
    def test_failover_marks_start_of_stable_suffix(self, statuses):
        log, capture = scenario(statuses)
        outcome = target_outcome(log, capture, "sea1", T_FAIL)
        if outcome.failover_s is None:
            return
        # Index of the probe whose reply time matches failover_s.
        idx = round((outcome.failover_s - 0.1) / 1.5)
        suffix = statuses[idx:]
        assert all(s == outcome.final_site for s in suffix)
        if idx > 0:
            assert statuses[idx - 1] != outcome.final_site


class TestOutcomesForRun:
    def test_multiple_targets(self):
        log1, capture = scenario(["ams", "ams"])
        other = IPv4Address.parse("10.0.1.1")
        log2 = ProbeLog(target=other, target_node="eye2")
        log2.sent.append(SentProbe(target=other, seq=99, sent_at=T_FAIL))
        capture.record(T_FAIL + 0.2, "bos", other, 99)
        outcomes = outcomes_for_run(
            {TARGET: log1, other: log2}, capture, "sea1", T_FAIL
        )
        assert len(outcomes) == 2
        by_target = {o.target: o for o in outcomes}
        assert by_target[TARGET].final_site == "ams"
        assert by_target[other].final_site == "bos"


class TestBounceStatistics:
    def make_outcome(self, recon, failover, bounces, disconnections):
        return TargetOutcome(
            target=TARGET, failed_site="sea1",
            reconnection_s=recon, failover_s=failover,
            bounces=bounces, disconnections=disconnections,
            final_site="ams" if failover is not None else None,
        )

    def test_paper_claims_shape(self):
        outcomes = [
            self.make_outcome(5.0, 5.0, 0, 0),
            self.make_outcome(5.0, 10.0, 1, 0),
            self.make_outcome(5.0, 12.0, 2, 0),
            self.make_outcome(5.0, 40.0, 5, 2),
        ]
        stats = bounce_statistics(outcomes)
        assert stats.n == 4
        assert stats.at_most_two_bounces == pytest.approx(0.75)
        assert stats.no_disconnection == pytest.approx(0.75)
        assert stats.mean_gap_s == pytest.approx((0 + 5 + 7 + 35) / 4)

    def test_never_reconnected_excluded(self):
        outcomes = [
            self.make_outcome(None, None, 0, 0),
            self.make_outcome(3.0, 3.0, 0, 0),
        ]
        stats = bounce_statistics(outcomes)
        assert stats.n == 1

    def test_empty(self):
        stats = bounce_statistics([])
        assert stats.n == 0
        assert "n=0" in stats.summary()

    def test_censored_targets_excluded_from_gap(self):
        outcomes = [
            self.make_outcome(2.0, None, 1, 3),  # censored: no failover
            self.make_outcome(2.0, 4.0, 0, 0),
        ]
        stats = bounce_statistics(outcomes)
        assert stats.mean_gap_s == pytest.approx(2.0)
