"""The VER2xx checks against the known-bad fixture worlds.

Each fixture under ``tests/fixtures/verify/`` exhibits exactly one
violation class; the parametrized test asserts the verifier reports
exactly that code and nothing else — catching both missed detections
and collateral false positives in one assertion.
"""

import json
from pathlib import Path

import pytest

from repro.bgp.damping import DampingConfig
from repro.verify import (
    CHECKS,
    all_checks,
    default_world,
    load_world,
    resolve_codes,
    verify_world,
    world_from_dict,
)
from repro.verify.disputes import max_suppression_seconds

FIXTURES = Path(__file__).parent / "fixtures" / "verify"

#: fixture stem -> the exact finding codes the verifier must report
EXPECTED = {
    "clean": frozenset(),
    "bad_gao_cycle": frozenset({"VER201"}),
    "bad_core_partition": frozenset({"VER202"}),
    "bad_client_unreachable": frozenset({"VER203"}),
    "bad_dispute_wheel": frozenset({"VER211"}),
    "bad_prepend": frozenset({"VER212"}),
    "bad_damping": frozenset({"VER213"}),
    "bad_dead_prefix": frozenset({"VER221"}),
    "bad_superprefix": frozenset({"VER222"}),
    "bad_ambiguous": frozenset({"VER223"}),
    "bad_site_dark": frozenset({"VER224"}),
    "bad_fault_unknown": frozenset({"VER231"}),
    "bad_fault_vacuous": frozenset({"VER232"}),
    "bad_plan_vacuous": frozenset({"VER233"}),
    "bad_over_capacity": frozenset({"VER241"}),
    "bad_capacity_unknown": frozenset({"VER242"}),
    "bad_capacity_vacuous": frozenset({"VER243"}),
}


def test_fixture_set_covers_every_check():
    covered = frozenset().union(*EXPECTED.values())
    assert covered == frozenset(CHECKS), "add a fixture for each new check"


def test_no_stray_fixtures():
    stems = {path.stem for path in FIXTURES.glob("*.json")}
    assert stems == set(EXPECTED)


@pytest.mark.parametrize("stem", sorted(EXPECTED))
def test_fixture_reports_exactly_its_codes(stem):
    world = load_world(FIXTURES / f"{stem}.json")
    report = verify_world(world)
    assert {f.code for f in report.findings} == EXPECTED[stem]


def test_findings_carry_fixture_path_as_source():
    path = FIXTURES / "bad_gao_cycle.json"
    report = verify_world(load_world(path))
    assert all(f.source == str(path) for f in report.findings)


def test_blocking_semantics_follow_severity():
    errors = verify_world(load_world(FIXTURES / "bad_gao_cycle.json"))
    warnings = verify_world(load_world(FIXTURES / "bad_damping.json"))
    assert not errors.ok
    assert warnings.ok and warnings.findings


class TestProfiles:
    def test_strict_only_checks_silent_without_opt_in(self):
        data = json.loads((FIXTURES / "bad_ambiguous.json").read_text())
        data["strict"] = False
        report = verify_world(world_from_dict(data))
        assert report.findings == []

    def test_caller_strict_overrides_world(self):
        data = json.loads((FIXTURES / "bad_ambiguous.json").read_text())
        data["strict"] = False
        report = verify_world(world_from_dict(data), strict=True)
        assert {f.code for f in report.findings} == {"VER223"}

    def test_ignore_mirrors_noqa(self):
        world = load_world(FIXTURES / "bad_gao_cycle.json")
        assert verify_world(world, ignore={"VER201"}).findings == []

    def test_select_keeps_only_requested(self):
        world = load_world(FIXTURES / "bad_gao_cycle.json")
        assert verify_world(world, select={"VER202"}).findings == []
        assert len(verify_world(world, select={"VER201"}).findings) == 1


class TestDefaultWorld:
    def test_shipped_testbed_verifies_clean(self):
        """Acceptance: zero findings on the shipped deployment, full roster."""
        report = verify_world(default_world(seed=42))
        assert report.findings == []

    def test_testbed_strict_profile_flags_only_ambiguity(self):
        report = verify_world(default_world(seed=42), strict=True)
        assert report.ok  # warnings only
        assert {f.code for f in report.findings} == {"VER223"}


class TestWorldSchema:
    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown world keys"):
            world_from_dict({"ases": [], "nope": 1})

    def test_ases_required(self):
        with pytest.raises(ValueError, match="'ases'"):
            world_from_dict({})

    def test_unknown_relationship_rejected(self):
        with pytest.raises(ValueError, match="unknown relationship"):
            world_from_dict({
                "ases": [{"node": "a", "asn": 1}, {"node": "b", "asn": 2}],
                "links": [{"a": "a", "b": "b", "rel": "frenemy"}],
            })

    def test_preferences_must_name_neighbors(self):
        with pytest.raises(ValueError, match="not a neighbor"):
            world_from_dict({
                "ases": [{"node": "a", "asn": 1}, {"node": "b", "asn": 2}],
                "preferences": {"a": {"b": 250}},
            })

    def test_technique_and_techniques_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            world_from_dict({
                "ases": [{"node": "a", "asn": 1}],
                "technique": "anycast",
                "techniques": ["anycast"],
            })

    def test_load_world_prefixes_errors_with_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        with pytest.raises(ValueError, match=str(path)):
            load_world(path)


class TestCatalogue:
    def test_codes_are_unique_and_ver_prefixed(self):
        codes = [check.code for check in all_checks()]
        assert len(codes) == len(set(codes))
        assert all(code.startswith("VER2") for code in codes)

    def test_resolve_codes_accepts_codes_and_names(self):
        assert resolve_codes(["VER201", "dispute-wheel"]) == {"VER201", "VER211"}

    def test_resolve_codes_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown verify check"):
            resolve_codes(["VER999"])


def test_max_suppression_matches_cisco_defaults():
    # half_life 900s, ceiling 12000, reuse 750: 900 * log2(16) = 3600s
    assert max_suppression_seconds(DampingConfig()) == pytest.approx(3600.0)
