"""Unit tests for the discrete-event engine."""

import pytest

from repro.bgp.engine import EventEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = EventEngine()
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(3.0, lambda: order.append("c"))
        engine.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_runs_in_insertion_order(self):
        engine = EventEngine()
        order = []
        for tag in "abc":
            engine.schedule(1.0, lambda t=tag: order.append(t))
        engine.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventEngine().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = EventEngine()
        engine.schedule(5.0, lambda: None)
        engine.run_until_idle()
        assert engine.now == 5.0
        with pytest.raises(ValueError):
            engine.schedule_at(4.0, lambda: None)

    def test_clock_advances_to_event_time(self):
        engine = EventEngine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [2.5]

    def test_nested_scheduling(self):
        engine = EventEngine()
        times = []

        def first():
            times.append(engine.now)
            engine.schedule(1.0, lambda: times.append(engine.now))

        engine.schedule(1.0, first)
        engine.run_until_idle()
        assert times == [1.0, 2.0]


class TestRunControl:
    def test_run_until_stops_at_deadline(self):
        engine = EventEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(10.0, lambda: seen.append(10))
        engine.run_until(5.0)
        assert seen == [1]
        assert engine.now == 5.0
        assert engine.pending == 1

    def test_run_until_inclusive_of_deadline(self):
        engine = EventEngine()
        seen = []
        engine.schedule(5.0, lambda: seen.append(5))
        engine.run_until(5.0)
        assert seen == [5]

    def test_run_until_past_deadline_raises(self):
        """Matches schedule_at: asking the engine to run to a point in
        the past is a caller bug, not a silent no-op."""
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        engine.run_until(5.0)
        with pytest.raises(ValueError):
            engine.run_until(4.0)
        assert engine.now == 5.0  # clock untouched by the rejected call

    def test_run_until_current_time_is_allowed(self):
        engine = EventEngine()
        engine.schedule(5.0, lambda: None)
        engine.run_until(5.0)
        engine.run_until(5.0)  # deadline == now: fine, no-op
        assert engine.now == 5.0

    def test_advance_relative(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        engine.advance(4.0)
        assert engine.now == 5.0

    def test_step_returns_false_when_empty(self):
        assert not EventEngine().step()

    def test_run_until_idle_livelock_guard(self):
        engine = EventEngine()

        def respawn():
            engine.schedule(1.0, respawn)

        engine.schedule(1.0, respawn)
        with pytest.raises(RuntimeError):
            engine.run_until_idle(max_events=100)

    def test_processed_counter(self):
        engine = EventEngine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        assert engine.processed == 5


class TestCallbackErrorGuardRail:
    def test_raising_callback_wrapped_with_context(self):
        from repro.bgp.engine import CallbackError

        engine = EventEngine()

        def explode():
            raise KeyError("missing prefix")

        engine.schedule(2.5, explode)
        with pytest.raises(CallbackError) as excinfo:
            engine.run_until_idle()
        error = excinfo.value
        assert error.when == 2.5
        assert error.callback is explode
        assert "t=2.500000s" in str(error)
        assert "explode" in str(error)
        assert isinstance(error.__cause__, KeyError)

    def test_wrapped_with_telemetry_enabled(self):
        from repro import telemetry
        from repro.bgp.engine import CallbackError

        with telemetry.using(telemetry.Telemetry()):
            engine = EventEngine()
            engine.schedule(1.0, lambda: None)

            def explode():
                raise RuntimeError("boom")

            engine.schedule(2.0, explode)
            with pytest.raises(CallbackError) as excinfo:
                engine.run_until_idle()
        assert excinfo.value.when == 2.0
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_healthy_callbacks_unaffected(self):
        engine = EventEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [1.0]


class TestClockControl:
    def test_peek_returns_next_event_time(self):
        engine = EventEngine()
        assert engine.peek() is None
        engine.schedule(5.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.peek() == 2.0
        engine.step()
        assert engine.peek() == 5.0
        engine.run_until_idle()
        assert engine.peek() is None

    def test_peek_does_not_consume(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        assert engine.peek() == engine.peek() == 1.0
        assert engine.pending == 1

    def test_warp_moves_idle_clock_forward(self):
        engine = EventEngine()
        engine.warp(42.5)
        assert engine.now == 42.5
        seen = []
        engine.schedule(1.0, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [43.5]

    def test_warp_refuses_pending_events(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        with pytest.raises(RuntimeError, match="queued"):
            engine.warp(10.0)

    def test_warp_refuses_backwards(self):
        engine = EventEngine()
        engine.warp(10.0)
        with pytest.raises(ValueError):
            engine.warp(5.0)
        engine.warp(10.0)  # warping to now is a no-op
        assert engine.now == 10.0
