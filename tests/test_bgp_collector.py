"""Unit tests for route collectors."""

import pytest

from repro.bgp.collector import RouteCollector
from repro.net.addr import IPv4Prefix

from tests.conftest import build_line_network

PFX = IPv4Prefix.parse("184.164.244.0/24")


def collector_on_line(n=4, peers=("r1", "r2", "r3")):
    net = build_line_network(n)
    coll = RouteCollector("ris", net)
    for peer in peers:
        coll.attach(peer)
    return net, coll


class TestCollector:
    def test_records_announcements(self):
        net, coll = collector_on_line()
        net.announce("r0", PFX)
        net.converge()
        announcing_peers = {e.peer for e in coll.entries if e.announce}
        assert announcing_peers == {"r1", "r2", "r3"}

    def test_records_withdrawals(self):
        net, coll = collector_on_line()
        net.announce("r0", PFX)
        net.converge()
        net.withdraw("r0", PFX)
        net.converge()
        withdrawing = {e.peer for e in coll.entries if not e.announce}
        assert withdrawing == {"r1", "r2", "r3"}

    def test_entries_carry_as_paths(self):
        net, coll = collector_on_line()
        net.announce("r0", PFX)
        net.converge()
        for entry in coll.entries:
            if entry.announce:
                assert entry.as_path[-1] == 100  # origin ASN

    def test_timestamps_monotone_per_peer(self):
        net, coll = collector_on_line()
        net.announce("r0", PFX)
        net.converge()
        net.withdraw("r0", PFX)
        net.converge()
        for peer in coll.peers:
            times = [e.time for e in coll.entries if e.peer == peer]
            assert times == sorted(times)

    def test_visibility_lifecycle(self):
        net, coll = collector_on_line()
        assert coll.visibility(PFX, net.now) == 0.0
        net.announce("r0", PFX)
        net.converge()
        assert coll.visibility(PFX, net.now) == 1.0
        net.withdraw("r0", PFX)
        net.converge()
        assert coll.visibility(PFX, net.now) == 0.0

    def test_visibility_at_earlier_time(self):
        net, coll = collector_on_line()
        net.announce("r0", PFX)
        net.converge()
        announced_at = net.now
        net.withdraw("r0", PFX)
        net.converge()
        assert coll.visibility(PFX, announced_at) == 1.0

    def test_peers_with_route(self):
        net, coll = collector_on_line()
        net.announce("r0", PFX)
        net.converge()
        assert coll.peers_with_route(PFX, net.now) == {"r1", "r2", "r3"}

    def test_duplicate_attach_rejected(self):
        net, coll = collector_on_line()
        with pytest.raises(ValueError):
            coll.attach("r1")

    def test_attach_mid_experiment_gets_table_dump(self):
        net = build_line_network(3)
        net.announce("r0", PFX)
        net.converge()
        coll = RouteCollector("late", net)
        coll.attach("r2")
        net.converge()
        assert coll.visibility(PFX, net.now) == 1.0

    def test_clear(self):
        net, coll = collector_on_line()
        net.announce("r0", PFX)
        net.converge()
        coll.clear()
        assert coll.entries == []
        # peers stay attached after clear
        assert coll.peers == ["r1", "r2", "r3"]

    def test_updates_for_window(self):
        net, coll = collector_on_line()
        net.announce("r0", PFX)
        net.converge()
        t_mid = net.now
        net.withdraw("r0", PFX)
        net.converge()
        early = coll.updates_for(PFX, until=t_mid)
        late = coll.updates_for(PFX, since=t_mid)
        assert all(e.announce for e in early)
        assert any(not e.announce for e in late)
