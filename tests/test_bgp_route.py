"""Unit tests for routes and the decision process."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.route import Route, better, select_best
from repro.net.addr import IPv4Prefix

PFX = IPv4Prefix.parse("184.164.244.0/24")


def route(as_path=(1,), learned_from="n1", local_pref=100, origin="o") -> Route:
    return Route(
        prefix=PFX,
        as_path=tuple(as_path),
        learned_from=learned_from,
        local_pref=local_pref,
        origin_node=origin,
    )


class TestDecisionProcess:
    def test_higher_local_pref_wins(self):
        customer = route(local_pref=300, as_path=(1, 2, 3))
        peer = route(local_pref=200, as_path=(9,))
        assert better(customer, peer)
        assert not better(peer, customer)

    def test_shorter_path_wins_on_equal_pref(self):
        short = route(as_path=(1, 2))
        long = route(as_path=(3, 4, 5))
        assert better(short, long)

    def test_prepending_loses_on_equal_pref(self):
        """The proactive-prepending mechanism: 3 extra hops lose to the
        non-prepended route at the same LOCAL_PREF."""
        plain = route(as_path=(47065,), learned_from="a")
        prepended = route(as_path=(47065,) * 4, learned_from="b")
        assert better(plain, prepended)

    def test_local_pref_beats_prepending(self):
        """...but LOCAL_PREF overrides path length, which is how
        Appendix C.1 explains prepending's lost control."""
        prepended_customer = route(as_path=(47065,) * 6, local_pref=300)
        plain_provider = route(as_path=(47065,), local_pref=100)
        assert better(prepended_customer, plain_provider)

    def test_tiebreak_is_deterministic(self):
        a = route(learned_from="aaa")
        b = route(learned_from="bbb")
        assert better(a, b)
        assert not better(b, a)

    def test_select_best_empty(self):
        assert select_best([]) is None

    def test_select_best_total_order(self):
        routes = [
            route(local_pref=100, as_path=(1,), learned_from="x"),
            route(local_pref=300, as_path=(1, 2, 3, 4), learned_from="y"),
            route(local_pref=300, as_path=(1, 2), learned_from="z"),
        ]
        best = select_best(routes)
        assert best.local_pref == 300
        assert best.as_path == (1, 2)

    @given(st.permutations(range(4)))
    def test_select_best_order_independent(self, order):
        routes = [
            route(local_pref=100, learned_from="a"),
            route(local_pref=200, learned_from="b"),
            route(local_pref=200, as_path=(1, 2), learned_from="c"),
            route(local_pref=300, as_path=(1, 2, 3), learned_from="d"),
        ]
        shuffled = [routes[i] for i in order]
        assert select_best(shuffled) == select_best(routes)


class TestRouteOps:
    def test_extended_by_prepends_once(self):
        r = route(as_path=(2, 3))
        assert r.extended_by(1).as_path == (1, 2, 3)

    def test_extended_by_with_prepending(self):
        r = route(as_path=())
        assert r.extended_by(47065, prepend=3).as_path == (47065,) * 4

    def test_extended_by_rejects_negative(self):
        with pytest.raises(ValueError):
            route().extended_by(1, prepend=-1)

    def test_contains_asn(self):
        r = route(as_path=(1, 2, 3))
        assert r.contains_asn(2)
        assert not r.contains_asn(9)

    def test_origin_asn(self):
        assert route(as_path=(1, 2, 3)).origin_asn == 3

    def test_origin_asn_empty_path_raises(self):
        with pytest.raises(ValueError):
            route(as_path=()).origin_asn

    def test_path_length(self):
        assert route(as_path=(1, 1, 1, 2)).path_length == 4
