"""Unit tests for IPv4 address/prefix types."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import IPv4Address, IPv4Prefix


class TestIPv4Address:
    def test_parse_basic(self):
        assert IPv4Address.parse("10.0.0.1").value == (10 << 24) + 1

    def test_parse_all_octets(self):
        assert str(IPv4Address.parse("1.2.3.4")) == "1.2.3.4"

    def test_parse_max(self):
        assert IPv4Address.parse("255.255.255.255").value == 2**32 - 1

    def test_parse_zero(self):
        assert IPv4Address.parse("0.0.0.0").value == 0

    @pytest.mark.parametrize(
        "bad",
        ["256.0.0.1", "1.2.3", "1.2.3.4.5", "a.b.c.d", "01.2.3.4", "", "1..2.3"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            IPv4Address.parse(bad)

    def test_value_range_validated(self):
        with pytest.raises(ValueError):
            IPv4Address(-1)
        with pytest.raises(ValueError):
            IPv4Address(2**32)

    def test_ordering(self):
        assert IPv4Address.parse("1.0.0.0") < IPv4Address.parse("2.0.0.0")
        assert IPv4Address.parse("10.0.0.2") > IPv4Address.parse("10.0.0.1")

    def test_int_conversion(self):
        assert int(IPv4Address.parse("0.0.1.0")) == 256

    def test_hashable_and_eq(self):
        a = IPv4Address.parse("10.1.2.3")
        b = IPv4Address.parse("10.1.2.3")
        assert a == b
        assert len({a, b}) == 1

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_str_parse_roundtrip(self, value):
        addr = IPv4Address(value)
        assert IPv4Address.parse(str(addr)) == addr


class TestIPv4Prefix:
    def test_parse(self):
        p = IPv4Prefix.parse("184.164.244.0/24")
        assert p.length == 24
        assert str(p) == "184.164.244.0/24"

    def test_parse_rejects_host_bits(self):
        with pytest.raises(ValueError):
            IPv4Prefix.parse("10.0.0.1/24")

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            IPv4Prefix.parse(bad)

    def test_of_masks_host_bits(self):
        p = IPv4Prefix.of(IPv4Address.parse("10.1.2.3"), 16)
        assert str(p) == "10.1.0.0/16"

    def test_of_length_validated(self):
        with pytest.raises(ValueError):
            IPv4Prefix.of(IPv4Address.parse("10.0.0.0"), 33)

    def test_contains(self):
        p = IPv4Prefix.parse("10.1.0.0/16")
        assert p.contains(IPv4Address.parse("10.1.255.255"))
        assert not p.contains(IPv4Address.parse("10.2.0.0"))

    def test_zero_length_contains_everything(self):
        p = IPv4Prefix.parse("0.0.0.0/0")
        assert p.contains(IPv4Address.parse("255.1.2.3"))

    def test_covers(self):
        p23 = IPv4Prefix.parse("184.164.244.0/23")
        p24 = IPv4Prefix.parse("184.164.244.0/24")
        p24b = IPv4Prefix.parse("184.164.245.0/24")
        assert p23.covers(p24)
        assert p23.covers(p24b)
        assert p23.covers(p23)
        assert not p24.covers(p23)
        assert not p24.covers(p24b)

    def test_address_indexing(self):
        p = IPv4Prefix.parse("10.0.0.0/24")
        assert str(p.address(1)) == "10.0.0.1"
        assert str(p.address(255)) == "10.0.0.255"
        with pytest.raises(ValueError):
            p.address(256)

    def test_num_addresses(self):
        assert IPv4Prefix.parse("10.0.0.0/24").num_addresses() == 256
        assert IPv4Prefix.parse("10.0.0.0/32").num_addresses() == 1

    def test_subnets(self):
        p = IPv4Prefix.parse("184.164.244.0/23")
        subs = p.subnets(24)
        assert [str(s) for s in subs] == ["184.164.244.0/24", "184.164.245.0/24"]

    def test_subnets_same_length_is_identity(self):
        p = IPv4Prefix.parse("10.0.0.0/24")
        assert p.subnets(24) == [p]

    def test_subnets_shorter_rejected(self):
        with pytest.raises(ValueError):
            IPv4Prefix.parse("10.0.0.0/24").subnets(23)

    def test_supernet(self):
        p24 = IPv4Prefix.parse("184.164.245.0/24")
        assert str(p24.supernet()) == "184.164.244.0/23"
        assert str(p24.supernet(16)) == "184.164.0.0/16"

    def test_supernet_validates_length(self):
        with pytest.raises(ValueError):
            IPv4Prefix.parse("10.0.0.0/24").supernet(25)

    def test_ordering(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix.parse("10.0.0.0/16")
        assert a < b  # same network, shorter length first

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=32))
    def test_of_contains_seed_address(self, value, length):
        addr = IPv4Address(value)
        prefix = IPv4Prefix.of(addr, length)
        assert prefix.contains(addr)

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=32))
    def test_str_parse_roundtrip(self, value, length):
        prefix = IPv4Prefix.of(IPv4Address(value), length)
        assert IPv4Prefix.parse(str(prefix)) == prefix

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=32),
    )
    def test_covers_consistent_with_contains(self, value, l1, l2):
        addr = IPv4Address(value)
        p1 = IPv4Prefix.of(addr, min(l1, l2))
        p2 = IPv4Prefix.of(addr, max(l1, l2))
        assert p1.covers(p2)

    def test_mask_values(self):
        assert IPv4Prefix.parse("0.0.0.0/0").mask() == 0
        assert IPv4Prefix.parse("10.0.0.0/8").mask() == 0xFF000000
        assert IPv4Prefix.parse("10.0.0.0/32").mask() == 0xFFFFFFFF
