"""Symbolic propagation: engine unit tests and the agreement criterion.

The load-bearing test here is the matrix one: for every technique in the
Figure-2 roster and every choice of specific site, the symbolic fixed
point :func:`repro.verify.propagation.propagate` computes must assign
every web client to exactly the site the event simulation's converged
catchment assigns it. That equality is what licenses the verifier to
reason about plans without running the engine.
"""

import json
from pathlib import Path

import pytest

from repro.bgp.policy import Relationship
from repro.core.techniques import technique_by_name
from repro.measurement.catchment import catchment_from_network
from repro.topology.generator import TopologyParams
from repro.topology.testbed import (
    SPECIFIC_PREFIX,
    SUPERPREFIX,
    build_deployment,
)
from repro.verify import (
    Origination,
    PlanRecorder,
    SymbolicGraph,
    ambiguous_ties,
    propagate,
    record_plan,
    world_from_dict,
)

FIXTURES = Path(__file__).parent / "fixtures" / "verify"

#: the Figure 2 sweep roster (sweep_cmd.DEFAULT_TECHNIQUES)
MATRIX_TECHNIQUES = (
    "anycast",
    "reactive-anycast",
    "proactive-prepending",
    "proactive-superprefix",
    "combined",
)


def load_fixture_world(name: str):
    path = FIXTURES / f"{name}.json"
    return world_from_dict(json.loads(path.read_text()), source=str(path))


@pytest.fixture(scope="module")
def deployment():
    return build_deployment(params=TopologyParams(seed=42))


@pytest.fixture(scope="module")
def clean_world():
    return load_fixture_world("clean")


class TestPlanRecorder:
    def test_records_prepend_and_med(self, clean_world):
        recorder = PlanRecorder(clean_world.topology)
        recorder.announce("site:x", SPECIFIC_PREFIX, prepend=2, med=50)
        (origination,) = recorder.originations
        assert origination.prepend == 2 and origination.med == 50

    def test_reannouncement_replaces(self, clean_world):
        recorder = PlanRecorder(clean_world.topology)
        recorder.announce("site:x", SPECIFIC_PREFIX, prepend=3)
        recorder.announce("site:x", SPECIFIC_PREFIX)
        (origination,) = recorder.originations
        assert origination.prepend == 0

    def test_withdraw(self, clean_world):
        recorder = PlanRecorder(clean_world.topology)
        recorder.announce("site:x", SPECIFIC_PREFIX)
        assert recorder.withdraw("site:x", SPECIFIC_PREFIX)
        assert not recorder.originations
        assert not recorder.withdraw("site:x", SPECIFIC_PREFIX)

    def test_neighbors_proxies_topology(self, clean_world):
        recorder = PlanRecorder(clean_world.topology)
        assert recorder.neighbors("site:x") == {"p1": Relationship.PROVIDER}

    def test_record_plan_matches_technique_shape(self, clean_world):
        technique = technique_by_name("proactive-superprefix")
        plan = record_plan(
            technique, clean_world.deployment, "x", SPECIFIC_PREFIX, SUPERPREFIX
        )
        prefixes = sorted(str(o.prefix) for o in plan)
        # the /24 at the specific site plus the /23 at both sites
        assert prefixes == [
            "184.164.244.0/23", "184.164.244.0/23", "184.164.244.0/24",
        ]


class TestPropagate:
    def test_fixed_point_reaches_clients(self, clean_world):
        graph = SymbolicGraph.from_topology(clean_world.topology)
        result = propagate(
            graph,
            [Origination(node="site:x", prefix=SPECIFIC_PREFIX)],
            SPECIFIC_PREFIX,
        )
        assert result.stable
        assert result.origin_of("c1") == "site:x"
        assert result.origin_of("c2") == "site:x"

    def test_prepend_lengthens_exported_path(self, clean_world):
        graph = SymbolicGraph.from_topology(clean_world.topology)
        plain = propagate(
            graph, [Origination(node="site:x", prefix=SPECIFIC_PREFIX)],
            SPECIFIC_PREFIX,
        )
        prepended = propagate(
            graph,
            [Origination(node="site:x", prefix=SPECIFIC_PREFIX, prepend=2)],
            SPECIFIC_PREFIX,
        )
        assert len(prepended.best["c1"].as_path) == len(plain.best["c1"].as_path) + 2

    def test_neighbor_scoping_limits_export(self, clean_world):
        graph = SymbolicGraph.from_topology(clean_world.topology)
        scoped = propagate(
            graph,
            [Origination(node="site:x", prefix=SPECIFIC_PREFIX,
                         neighbors=frozenset())],
            SPECIFIC_PREFIX,
        )
        assert scoped.stable
        # the origin holds its local route; nobody else hears it
        assert set(scoped.best) == {"site:x"}

    def test_carried_links_and_reached(self, clean_world):
        graph = SymbolicGraph.from_topology(clean_world.topology)
        result = propagate(
            graph, [Origination(node="site:x", prefix=SPECIFIC_PREFIX)],
            SPECIFIC_PREFIX,
        )
        assert frozenset(("site:x", "p1")) in result.carried_links()
        assert {"p1", "t1", "t2", "p2", "c1", "c2"} <= result.reached()

    def test_unknown_origin_node_raises(self, clean_world):
        graph = SymbolicGraph.from_topology(clean_world.topology)
        with pytest.raises(KeyError):
            propagate(
                graph, [Origination(node="nope", prefix=SPECIFIC_PREFIX)],
                SPECIFIC_PREFIX,
            )

    def test_dispute_wheel_is_detected_not_looped(self):
        world = load_fixture_world("bad_dispute_wheel")
        graph = SymbolicGraph.from_topology(world.topology, world.preferences)
        result = propagate(
            graph, [Origination(node="site:x", prefix=SPECIFIC_PREFIX)],
            SPECIFIC_PREFIX,
        )
        assert not result.stable
        assert set(result.oscillating) == {"w0", "w1", "w2"}

    def test_preference_override_changes_selection(self, clean_world):
        graph = SymbolicGraph.from_topology(
            clean_world.topology, {"c1": {"p1": 50}}
        )
        assert graph.local_pref("c1", "p1") == 50
        assert graph.local_pref("c2", "p2") == 100  # provider default

    def test_ambiguous_ties_detects_final_tiebreak(self):
        world = load_fixture_world("bad_ambiguous")
        graph = SymbolicGraph.from_topology(world.topology)
        plan = record_plan(
            world.techniques[0], world.deployment, "x",
            world.prefix, world.superprefix,
        )
        result = propagate(graph, plan, world.prefix)
        assert result.stable
        ties = ambiguous_ties(result, "c")
        assert len(ties) == 1
        assert ties[0].origin_node != result.best["c"].origin_node


class TestAgreementMatrix:
    """Symbolic fixed point == simulated catchment, across the matrix."""

    def test_every_technique_and_site_agrees(self, deployment):
        graph = SymbolicGraph.from_topology(deployment.topology)
        clients = [info.node_id for info in deployment.topology.web_client_ases()]
        mismatches = []
        for name in MATRIX_TECHNIQUES:
            technique = technique_by_name(name)
            for site in deployment.site_names:
                plan = record_plan(
                    technique, deployment, site, SPECIFIC_PREFIX, SUPERPREFIX
                )
                result = propagate(graph, plan, SPECIFIC_PREFIX)
                assert result.stable, f"{name}/{site} did not stabilize"
                symbolic = {
                    c: deployment.site_of_node(result.best[c].origin_node)
                    if c in result.best else None
                    for c in clients
                }
                network = deployment.topology.build_network(seed=0)
                technique.announce_normal(
                    network, deployment, site, SPECIFIC_PREFIX, SUPERPREFIX
                )
                network.converge()
                simulated = catchment_from_network(
                    network, deployment, SPECIFIC_PREFIX, clients
                )
                wrong = [c for c in clients if symbolic[c] != simulated[c]]
                if wrong:
                    mismatches.append((name, site, wrong[:3]))
        assert not mismatches, mismatches
