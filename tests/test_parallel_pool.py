"""Tests for the crash-isolated multiprocess cell pool.

Worker functions live at module level so they pickle under the spawn
start method too; under the default fork context that is not strictly
required, but the pool promises it works either way.
"""

import os
import time

import pytest

from repro import telemetry
from repro.parallel.pool import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellResult,
    map_cells,
    merge_telemetry,
)
from repro.telemetry.trace import CellEnd, CellStart, ProbeSent, TraceRecorder


def _scale(context, payload):
    return context * payload


def _fail_on_odd(context, payload):
    if payload % 2:
        raise RuntimeError(f"odd payload {payload}")
    return payload


def _sleep_for(context, payload):
    time.sleep(payload)
    return payload


def _exit_hard(context, payload):
    os._exit(9)


def _instrumented(context, payload):
    tel = telemetry.current()
    tel.inc("pool.test.work", payload)
    tel.observe("pool.test.payload", float(payload))
    tel.emit(ProbeSent(t=float(payload), target="10.0.0.1", seq=payload))
    return payload


def _cells(payloads):
    return [(f"cell/{i}", p) for i, p in enumerate(payloads)]


class TestSerialPath:
    def test_results_in_order_with_values(self):
        results = map_cells(_scale, 10, _cells([1, 2, 3]), workers=1)
        assert [r.value for r in results] == [10, 20, 30]
        assert [r.index for r in results] == [0, 1, 2]
        assert all(r.status == STATUS_OK for r in results)
        assert all(r.worker == -1 for r in results)  # no subprocess

    def test_error_reported_with_traceback(self):
        results = map_cells(_fail_on_odd, None, _cells([0, 1, 2]), workers=1)
        assert [r.status for r in results] == [STATUS_OK, STATUS_ERROR, STATUS_OK]
        assert "odd payload 1" in results[1].error
        assert results[1].value is None
        assert not results[1].ok

    def test_progress_called_per_cell(self):
        seen = []
        map_cells(
            _scale, 1, _cells([5, 6]), workers=1,
            progress=lambda done, total, result: seen.append((done, total, result.cell_id)),
        )
        assert seen == [(1, 2, "cell/0"), (2, 2, "cell/1")]

    def test_empty_cell_list(self):
        assert map_cells(_scale, 1, [], workers=4) == []

    def test_telemetry_recorded_live(self):
        """Serial cells write straight into the active backend."""
        active = telemetry.Telemetry()
        with telemetry.using(active):
            map_cells(_instrumented, None, _cells([2, 3]), workers=1)
        assert active.counters["pool.test.work"].value == 5


class TestParallelPath:
    def test_matches_serial_output(self):
        payloads = list(range(7))
        serial = map_cells(_scale, 3, _cells(payloads), workers=1)
        parallel = map_cells(_scale, 3, _cells(payloads), workers=2)
        assert [r.value for r in parallel] == [r.value for r in serial]
        assert [r.index for r in parallel] == list(range(7))
        assert all(r.status == STATUS_OK for r in parallel)
        assert all(r.worker >= 0 for r in parallel)

    def test_completion_order_does_not_leak_into_results(self):
        """Cell 0 sleeps longest, so it finishes last; results must
        still come back in input order with the right values."""
        delays = [0.4, 0.01, 0.01, 0.01]
        results = map_cells(_sleep_for, None, _cells(delays), workers=2)
        assert [r.value for r in results] == delays

    def test_error_isolated_to_its_cell(self):
        results = map_cells(_fail_on_odd, None, _cells([0, 1, 2, 3]), workers=2)
        assert [r.status for r in results] == [
            STATUS_OK, STATUS_ERROR, STATUS_OK, STATUS_ERROR,
        ]
        assert "odd payload 3" in results[3].error

    def test_crashed_worker_reported_and_replaced(self):
        """A worker that dies mid-cell loses that cell only; the pool
        respawns and finishes the rest."""
        cells = [("boom", 0), ("c1", 1), ("c2", 2), ("c3", 3)]
        results = map_cells(_mixed_crash, None, cells, workers=2)
        assert results[0].status == STATUS_CRASHED
        assert "exit code" in results[0].error
        assert [r.status for r in results[1:]] == [STATUS_OK] * 3
        assert [r.value for r in results[1:]] == [1, 2, 3]

    def test_timeout_kills_the_cell_not_the_sweep(self):
        delays = [5.0, 0.01, 0.01]
        results = map_cells(
            _sleep_for, None, _cells(delays), workers=2, timeout_s=0.6,
        )
        assert results[0].status == STATUS_TIMEOUT
        assert "timeout" in results[0].error
        assert [r.status for r in results[1:]] == [STATUS_OK, STATUS_OK]

    def test_progress_counts_every_completion(self):
        seen = []
        map_cells(
            _scale, 1, _cells([1, 2, 3, 4]), workers=2,
            progress=lambda done, total, result: seen.append((done, total)),
        )
        assert [done for done, _ in seen] == [1, 2, 3, 4]
        assert all(total == 4 for _, total in seen)


def _mixed_crash(context, payload):
    if payload == 0:
        os._exit(9)
    return payload


class TestTelemetryMerge:
    def test_counters_summed_across_workers(self):
        active = telemetry.Telemetry()
        with telemetry.using(active):
            map_cells(_instrumented, None, _cells([1, 2, 3, 4]), workers=2)
        assert active.counters["pool.test.work"].value == 10
        assert active.histograms["pool.test.payload"].count == 4

    def test_trace_events_bracketed_per_cell(self):
        tracer = TraceRecorder()
        active = telemetry.Telemetry(tracer=tracer)
        with telemetry.using(active):
            map_cells(_instrumented, None, _cells([1, 2]), workers=2)
        events = tracer.events
        # Per cell: CellStart, the cell's own events, CellEnd -- in cell
        # order regardless of completion order.
        kinds = [type(e).__name__ for e in events]
        assert kinds == [
            "CellStart", "ProbeSent", "CellEnd",
            "CellStart", "ProbeSent", "CellEnd",
        ]
        starts = [e for e in events if isinstance(e, CellStart)]
        assert [s.cell for s in starts] == ["cell/0", "cell/1"]
        ends = [e for e in events if isinstance(e, CellEnd)]
        assert all(e.status == STATUS_OK for e in ends)
        assert [e.events for e in ends] == [1, 1]

    def test_disabled_backend_skips_collection(self):
        results = map_cells(_instrumented, None, _cells([1]), workers=2)
        assert results[0].telemetry is None

    def test_merge_telemetry_without_tracer(self):
        """Metrics merge even when the parent records no trace."""
        backend = telemetry.Telemetry()
        result = CellResult(
            index=0, cell_id="c", status=STATUS_OK,
            telemetry=_snapshot_payload(),
        )
        merge_telemetry(backend, [result])
        assert backend.counters["x"].value == 2

    def test_failed_cell_has_no_telemetry_to_merge(self):
        backend = telemetry.Telemetry()
        merge_telemetry(
            backend,
            [CellResult(index=0, cell_id="c", status=STATUS_CRASHED)],
        )
        assert backend.counters == {}


def _snapshot_payload():
    from repro.parallel.pool import CellTelemetry

    worker = telemetry.Telemetry()
    worker.inc("x", 2)
    return CellTelemetry(cell="c", snapshot=worker.mergeable_snapshot(), events=[])


class TestWorkerHygiene:
    def test_worker_does_not_write_parent_backend(self):
        """Under fork the child inherits the parent's registry object;
        the pool must install a private one before running the cell."""
        active = telemetry.Telemetry()
        with telemetry.using(active):
            map_cells(_instrumented, None, _cells([5]), workers=2)
            # The only mutation visible here is the deterministic merge.
            assert active.counters["pool.test.work"].value == 5
            snapshot = active.mergeable_snapshot()
            # Merging is idempotent state, not double-counted live writes.
            assert snapshot["counters"]["pool.test.work"] == 5
