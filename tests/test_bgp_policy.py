"""Unit tests for Gao-Rexford policy functions."""

import pytest

from repro.bgp.policy import (
    LOCAL_ORIGIN_PREF,
    LOCAL_PREF,
    Relationship,
    import_local_pref,
    should_export,
)

C, P, PR, COL = (
    Relationship.CUSTOMER,
    Relationship.PEER,
    Relationship.PROVIDER,
    Relationship.COLLECTOR,
)


class TestRelationship:
    def test_inverse_customer_provider(self):
        assert C.inverse() is PR
        assert PR.inverse() is C

    def test_inverse_symmetric_relations(self):
        assert P.inverse() is P
        assert COL.inverse() is COL


class TestLocalPref:
    def test_preference_ordering(self):
        """Customer > peer > provider, with local origination on top."""
        assert LOCAL_ORIGIN_PREF > LOCAL_PREF[C] > LOCAL_PREF[P] > LOCAL_PREF[PR]

    def test_import_local_pref(self):
        assert import_local_pref(C) == 300
        assert import_local_pref(P) == 200
        assert import_local_pref(PR) == 100

    def test_collector_sessions_never_import(self):
        with pytest.raises(ValueError):
            import_local_pref(COL)


class TestValleyFreeExport:
    def test_local_routes_exported_everywhere(self):
        for rel in (C, P, PR, COL):
            assert should_export(None, rel)

    def test_customer_routes_exported_everywhere(self):
        for rel in (C, P, PR, COL):
            assert should_export(C, rel)

    def test_peer_routes_only_to_customers(self):
        assert should_export(P, C)
        assert not should_export(P, P)
        assert not should_export(P, PR)

    def test_provider_routes_only_to_customers(self):
        assert should_export(PR, C)
        assert not should_export(PR, P)
        assert not should_export(PR, PR)

    def test_collectors_get_everything(self):
        for learned in (None, C, P, PR):
            assert should_export(learned, COL)
