"""Checkpoint-forked failover runs: determinism, reuse, and phases.

The sweep's hot path converges each technique's base announcement plan
once, snapshots it, and forks the snapshot per cell
(``FailoverExperiment.baseline_for`` / ``run_site(checkpoint=True)``).
These tests pin the contract: forked runs are reproducible across
experiments and worker counts, baselines are computed once per
technique, and the legacy cold-start path stays the default for library
users.
"""

import json

import pytest

from repro import telemetry
from repro.checkpoint import NetworkSnapshot
from repro.core.experiment import FailoverConfig, FailoverExperiment
from repro.core.techniques import (
    Anycast,
    ProactivePrepending,
    ReactiveAnycast,
    technique_by_name,
)
from repro.measurement.export import sweep_report_to_dict
from repro.parallel import matrix, run_sweep
from repro.bgp.session import SessionTiming

#: Mild pacing (mirrors test_core_experiment.TEST_TIMING): enough
#: dynamics to exercise MRAI/jitter state through the snapshot.
TIMING = SessionTiming(latency=0.05, jitter=0.5, mrai=10.0, busy_prob=0.3, fib_delay=1.0)


def make_config() -> FailoverConfig:
    return FailoverConfig(
        probe_duration=120.0, targets_per_site=6, timing=TIMING, seed=13
    )


def make_experiment(deployment, **kwargs) -> FailoverExperiment:
    return FailoverExperiment(
        deployment.topology, deployment, make_config(), **kwargs
    )


def canonical(report) -> str:
    doc = sweep_report_to_dict(report)
    doc.pop("wall_s")
    doc.pop("workers")
    for cell in doc["cells"]:
        cell.pop("wall_s")
    return json.dumps(doc, sort_keys=True)


def phase_names(tracer) -> list[str]:
    return [e.name for e in tracer.events_of(telemetry.PhaseStart)]


class TestBaselineCache:
    def test_baseline_computed_once_per_technique(self, deployment):
        experiment = make_experiment(deployment, use_checkpoint=True)
        technique = Anycast()
        first = experiment.baseline_for(technique)
        assert isinstance(first, NetworkSnapshot)
        assert experiment.baseline_for(technique) is first
        assert experiment.cached_baselines() == {technique.baseline_key: first}

    def test_baseline_reproducible_across_experiments(self, deployment):
        a = make_experiment(deployment, use_checkpoint=True)
        b = make_experiment(deployment, use_checkpoint=True)
        assert (
            a.baseline_for(Anycast()).dumps() == b.baseline_for(Anycast()).dumps()
        )

    def test_prepending_baseline_key_tracks_restriction(self):
        assert Anycast().baseline_key == "anycast"
        assert (
            ProactivePrepending().baseline_key
            != ProactivePrepending(restrict_to_shared_neighbors=True).baseline_key
        )


class TestForkedRunDeterminism:
    def test_forked_run_reproducible_across_experiments(self, deployment):
        site = deployment.site_names[0]
        results = []
        for _ in range(2):
            experiment = make_experiment(deployment, use_checkpoint=True)
            result = experiment.run_site(ReactiveAnycast(), site)
            results.append(
                (
                    result.withdrawal_time,
                    sorted(map(str, result.controllable)),
                    [
                        (str(o.target), o.reconnection_s, o.failover_s, o.final_site)
                        for o in result.outcomes
                    ],
                )
            )
        assert results[0] == results[1]

    def test_forked_sweep_serial_vs_workers_identical(self, deployment):
        techniques = [technique_by_name("anycast"), technique_by_name("reactive-anycast")]
        sites = deployment.site_names[:2]
        cells = matrix(techniques, sites)
        serial = run_sweep(
            make_experiment(deployment, use_checkpoint=True), cells, workers=1
        )
        parallel = run_sweep(
            make_experiment(deployment, use_checkpoint=True), cells, workers=2
        )
        assert serial.ok and parallel.ok
        assert canonical(serial) == canonical(parallel)

    def test_fork_and_legacy_reach_same_control(self, deployment):
        """The base/delta decomposition invariant: forked deployment
        reaches the same pre-failure controllable set as the legacy
        cold-start deploy."""
        site = deployment.site_names[0]
        for name in ("anycast", "proactive-superprefix", "combined"):
            technique = technique_by_name(name)
            legacy = make_experiment(deployment).run_site(technique, site)
            forked = make_experiment(deployment, use_checkpoint=True).run_site(
                technique, site
            )
            assert set(forked.controllable) == set(legacy.controllable), name
            assert forked.controllable_frac == legacy.controllable_frac


class TestPhasesAndDefaults:
    def test_library_default_is_legacy_cold_start(self, deployment):
        experiment = make_experiment(deployment)
        assert experiment.use_checkpoint is False
        tracer = telemetry.TraceRecorder()
        with telemetry.using(telemetry.Telemetry(tracer=tracer)):
            experiment.run_site(Anycast(), deployment.site_names[0])
        names = phase_names(tracer)
        assert "deploy-converge" in names
        assert "baseline-converge" not in names
        assert "fork-restore" not in names

    def test_checkpoint_run_emits_fork_phases(self, deployment):
        experiment = make_experiment(deployment, use_checkpoint=True)
        tracer = telemetry.TraceRecorder()
        with telemetry.using(telemetry.Telemetry(tracer=tracer)):
            for site in deployment.site_names[:2]:
                experiment.run_site(Anycast(), site)
        names = phase_names(tracer)
        assert names.count("baseline-converge") == 1  # shared by both cells
        assert names.count("fork-restore") == 2
        assert "deploy-converge" not in names

    def test_run_site_checkpoint_override(self, deployment):
        experiment = make_experiment(deployment)  # legacy default
        tracer = telemetry.TraceRecorder()
        with telemetry.using(telemetry.Telemetry(tracer=tracer)):
            experiment.run_site(
                Anycast(), deployment.site_names[0], checkpoint=True
            )
        assert "fork-restore" in phase_names(tracer)
        assert "deploy-converge" not in phase_names(tracer)

    def test_sweep_precomputes_baselines_in_parent(self, deployment):
        from repro.parallel.sweep import shared_state

        techniques = [technique_by_name("anycast"), technique_by_name("combined")]
        cells = matrix(techniques, deployment.site_names[:2])
        experiment = make_experiment(deployment, use_checkpoint=True)
        shared = shared_state(experiment, cells)
        assert shared.use_checkpoint is True
        assert sorted(shared.baselines) == sorted(t.baseline_key for t in techniques)

    def test_legacy_sweep_ships_no_baselines(self, deployment):
        from repro.parallel.sweep import shared_state

        cells = matrix([technique_by_name("anycast")], deployment.site_names[:1])
        shared = shared_state(make_experiment(deployment), cells)
        assert shared.use_checkpoint is False
        assert shared.baselines == {}
