"""Tests for MED support and the proactive-med technique."""

import pytest

from repro.bgp.network import BgpNetwork
from repro.bgp.route import Route, better
from repro.core.techniques import ProactiveMed, technique_by_name
from repro.net.addr import IPv4Prefix
from repro.topology.testbed import SPECIFIC_PREFIX, SUPERPREFIX

from tests.conftest import FAST_TIMING

PFX = IPv4Prefix.parse("184.164.244.0/24")


def route(med=0, first_asn=47065, learned_from="a", length=2):
    path = (first_asn,) + (9,) * (length - 1)
    return Route(PFX, path, learned_from, 200, "o", med=med)


class TestMedComparison:
    def test_lower_med_wins_same_neighbor_as(self):
        assert better(route(med=0, learned_from="b"), route(med=100, learned_from="a"))

    def test_med_ignored_across_neighbor_ases(self):
        low_med = route(med=0, first_asn=1, learned_from="b")
        high_med = route(med=100, first_asn=2, learned_from="a")
        # Falls through to the learned_from tie-break: "a" < "b".
        assert better(high_med, low_med)

    def test_med_after_path_length(self):
        short_high_med = route(med=100, length=2, learned_from="b")
        long_low_med = route(med=0, length=3, learned_from="a")
        assert better(short_high_med, long_low_med)

    def test_local_pref_dominates_med(self):
        customer = Route(PFX, (47065,), "a", 300, "o", med=100)
        provider = Route(PFX, (47065,), "b", 100, "o", med=0)
        assert better(customer, provider)


class TestMedPropagation:
    def build(self) -> BgpNetwork:
        """Two sites (same ASN) both connected to one shared neighbor,
        which also has a customer."""
        net = BgpNetwork(seed=0, default_timing=FAST_TIMING)
        net.add_router("site-a", 47065)
        net.add_router("site-b", 47065)
        net.add_router("shared", 100)
        net.add_router("client", 200)
        net.add_provider("site-a", "shared")
        net.add_provider("site-b", "shared")
        net.add_provider("client", "shared")
        return net

    def test_shared_neighbor_honours_med(self):
        net = self.build()
        net.announce("site-a", PFX, med=100)
        net.announce("site-b", PFX, med=0)
        net.converge()
        assert net.router("shared").best_route(PFX).origin_node == "site-b"

    def test_med_steers_despite_tiebreak(self):
        """Without MED, 'shared' picks site-a by learned_from order;
        MED overrides that."""
        net = self.build()
        net.announce("site-a", PFX)
        net.announce("site-b", PFX)
        net.converge()
        assert net.router("shared").best_route(PFX).origin_node == "site-a"

    def test_med_not_reexported(self):
        """MED is non-transitive: the client behind 'shared' sees MED 0
        regardless of what the sites sent."""
        net = self.build()
        net.announce("site-a", PFX, med=100)
        net.announce("site-b", PFX, med=70)
        net.converge()
        client_route = net.router("client").best_route(PFX)
        assert client_route.med == 0

    def test_failover_to_higher_med(self):
        net = self.build()
        net.announce("site-a", PFX, med=0)
        net.announce("site-b", PFX, med=100)
        net.converge()
        assert net.router("shared").best_route(PFX).origin_node == "site-a"
        net.withdraw("site-a", PFX)
        net.converge()
        assert net.router("shared").best_route(PFX).origin_node == "site-b"


class TestProactiveMedTechnique:
    def test_registered(self):
        technique = technique_by_name("proactive-med", backup_med=50)
        assert technique.name == "proactive-med-50"

    def test_validation(self):
        with pytest.raises(ValueError):
            ProactiveMed(0)

    def test_announcements(self, deployment):
        net = deployment.topology.build_network(seed=3, timing=FAST_TIMING)
        ProactiveMed(100).announce_normal(
            net, deployment, "sea1", SPECIFIC_PREFIX, SUPERPREFIX
        )
        net.converge()
        specific = net.router(deployment.site_node("sea1"))
        assert specific.origin_config(SPECIFIC_PREFIX).med == 0
        other = net.router(deployment.site_node("ams"))
        assert other.origin_config(SPECIFIC_PREFIX).med == 100

    def test_no_path_length_penalty(self, deployment):
        """Unlike prepending, MED backups keep natural path lengths --
        a client's route to a backup site is as short as pure anycast's."""
        net_med = deployment.topology.build_network(seed=3, timing=FAST_TIMING)
        ProactiveMed(100).announce_normal(
            net_med, deployment, "sea1", SPECIFIC_PREFIX, SUPERPREFIX
        )
        net_med.converge()
        net_any = deployment.topology.build_network(seed=3, timing=FAST_TIMING)
        for site in deployment.site_names:
            net_any.announce(deployment.site_node(site), SPECIFIC_PREFIX)
        net_any.converge()
        client = deployment.topology.web_client_ases()[0].node_id
        med_route = net_med.router(client).best_route(SPECIFIC_PREFIX)
        any_route = net_any.router(client).best_route(SPECIFIC_PREFIX)
        assert len(med_route.as_path) == len(any_route.as_path)
