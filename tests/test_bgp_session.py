"""Unit tests for eBGP session delivery and MRAI pacing."""

import random

import pytest

from repro.bgp.engine import EventEngine
from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.policy import Relationship
from repro.bgp.session import DEFAULT_INTERNET_TIMING, Session, SessionTiming
from repro.net.addr import IPv4Prefix

PFX = IPv4Prefix.parse("184.164.244.0/24")
PFX2 = IPv4Prefix.parse("184.164.245.0/24")


def make_session(timing: SessionTiming, seed: int = 0):
    engine = EventEngine()
    received = []
    session = Session(
        engine,
        random.Random(seed),
        "a",
        "b",
        Relationship.CUSTOMER,
        received.append,
        timing,
    )
    return engine, session, received


def ann(prefix=PFX, path=(1,)) -> Announcement:
    return Announcement(sender="a", prefix=prefix, as_path=tuple(path), origin_node="a")


def wd(prefix=PFX) -> Withdrawal:
    return Withdrawal(sender="a", prefix=prefix)


class TestDelivery:
    def test_first_update_delivered_promptly(self):
        engine, session, received = make_session(
            SessionTiming(latency=0.1, jitter=0.0, mrai=30.0)
        )
        session.send(ann())
        engine.run_until_idle()
        assert len(received) == 1
        assert engine.now >= 0.1

    def test_fifo_preserved_under_jitter(self):
        """Later flushes never arrive before earlier ones, even with
        random per-message jitter."""
        engine, session, received = make_session(
            SessionTiming(latency=0.01, jitter=1.0, mrai=0.0), seed=3
        )
        for i in range(20):
            session.send(ann(path=(i + 1,)))
            engine.run_until(engine.now + 0.001)
        engine.run_until_idle()
        paths = [u.as_path for u in received]
        assert paths == sorted(paths)

    def test_sent_updates_counter(self):
        engine, session, _ = make_session(SessionTiming(mrai=0.0))
        session.send(ann())
        session.send(wd())
        engine.run_until_idle()
        assert session.sent_updates == 2


class TestMraiCoalescing:
    def test_updates_coalesce_during_mrai(self):
        """Three best-path changes inside one MRAI window reach the
        neighbor as a single update with the final state."""
        engine, session, received = make_session(
            SessionTiming(latency=0.01, jitter=0.0, mrai=10.0)
        )
        session.send(ann(path=(1,)))  # leaves immediately, starts timer
        session.send(ann(path=(2,)))
        session.send(ann(path=(3,)))
        engine.run_until_idle()
        assert [u.as_path for u in received] == [(1,), (3,)]

    def test_mrai_zero_disables_pacing(self):
        engine, session, received = make_session(SessionTiming(mrai=0.0))
        for i in range(3):
            session.send(ann(path=(i,)))
        engine.run_until_idle()
        assert len(received) == 3

    def test_withdrawal_for_unadvertised_prefix_is_dropped(self):
        engine, session, received = make_session(SessionTiming(mrai=0.0))
        session.send(wd())
        engine.run_until_idle()
        assert received == []

    def test_withdrawal_cancels_unsent_announcement(self):
        """Announce+withdraw inside one MRAI window: the neighbor never
        hears about the prefix at all."""
        engine, session, received = make_session(
            SessionTiming(latency=0.01, jitter=0.0, mrai=10.0)
        )
        session.send(ann(PFX2))  # flushed immediately; timer now running
        session.send(ann(PFX))   # pending
        session.send(wd(PFX))    # cancels the pending announcement
        engine.run_until_idle()
        assert [u.prefix for u in received] == [PFX2]

    def test_withdrawal_after_advertisement_goes_out(self):
        engine, session, received = make_session(SessionTiming(mrai=0.0))
        session.send(ann())
        session.send(wd())
        engine.run_until_idle()
        assert isinstance(received[-1], Withdrawal)

    def test_advertised_tracks_wire_state(self):
        engine, session, _ = make_session(SessionTiming(mrai=0.0))
        session.send(ann())
        engine.run_until_idle()
        assert PFX in session.advertised
        session.send(wd())
        engine.run_until_idle()
        assert PFX not in session.advertised

    def test_second_update_waits_roughly_one_mrai(self):
        engine = EventEngine()
        arrivals = []
        session = Session(
            engine,
            random.Random(0),
            "a",
            "b",
            Relationship.CUSTOMER,
            lambda u: arrivals.append(engine.now),
            SessionTiming(latency=0.0, jitter=0.0, mrai=10.0),
        )
        session.send(ann(path=(1,)))
        session.send(ann(path=(2,)))
        engine.run_until_idle()
        assert len(arrivals) == 2
        # Second flush happens at MRAI expiry: within [7.5, 12.5].
        assert 7.5 <= arrivals[1] <= 12.6


class TestTimingModel:
    def test_busy_prob_delays_some_first_updates(self):
        delays = []
        for seed in range(40):
            engine = EventEngine()
            arrivals = []
            session = Session(
                engine,
                random.Random(seed),
                "a",
                "b",
                Relationship.CUSTOMER,
                lambda u: arrivals.append(engine.now),
                SessionTiming(latency=0.0, jitter=0.0, mrai=10.0, busy_prob=0.5),
            )
            session.send(ann())
            engine.run_until_idle()
            delays.append(arrivals[0])
        immediate = sum(1 for d in delays if d < 0.01)
        delayed = sum(1 for d in delays if d >= 0.01)
        assert immediate > 5
        assert delayed > 5
        assert all(d <= 23.0 for d in delays)

    def test_busy_prob_validation(self):
        with pytest.raises(ValueError):
            SessionTiming(busy_prob=1.5)

    def test_mrai_sigma_validation(self):
        with pytest.raises(ValueError):
            SessionTiming(mrai_sigma=-1.0)

    def test_fib_delay_validation(self):
        with pytest.raises(ValueError):
            SessionTiming(fib_delay=-1.0)

    def test_mrai_sigma_spreads_session_mrais(self):
        timing = SessionTiming(mrai=30.0, mrai_sigma=1.0)
        rng = random.Random(5)
        engine = EventEngine()
        mrais = [
            Session(engine, rng, "a", f"b{i}", Relationship.PEER, lambda u: None, timing).mrai
            for i in range(50)
        ]
        assert min(mrais) < 15.0
        assert max(mrais) > 60.0

    def test_default_profile_is_calibrated(self):
        """Guard the calibrated constants (DESIGN.md §5): changing them
        silently would shift every reproduced figure."""
        t = DEFAULT_INTERNET_TIMING
        assert t.mrai == 50.0
        assert t.busy_prob == 0.45
        assert t.mrai_sigma == 1.5
        assert t.fib_delay == 2.5


class ScriptedRng(random.Random):
    """Deterministic stand-in: ``uniform`` pops scripted values."""

    def __init__(self, uniforms):
        super().__init__(0)
        self._uniforms = list(uniforms)

    def uniform(self, a, b):
        return self._uniforms.pop(0)


class TestEpochGuardsMraiTimer:
    def test_stale_mrai_timer_is_inert_after_reopen(self):
        """Regression: an MRAI timer armed before ``reopen`` used to fire
        into the *new* epoch, clearing ``_mrai_running`` under the new
        timer and flushing the new epoch's pending updates early.

        Scripted draws (one jitter draw per flushed update, one duration
        draw per timer): the pre-reopen timer lands at t=12, the
        post-reopen timers at t=8 and t=20. An update queued at t=9 must
        wait for the *legitimate* expiry at t=20, not leak out when the
        stale t=12 timer fires.
        """
        engine = EventEngine()
        arrivals = []
        session = Session(
            engine,
            ScriptedRng([0.0, 12.0, 0.0, 8.0, 0.0, 12.0, 0.0, 12.0]),
            "a",
            "b",
            Relationship.CUSTOMER,
            lambda u: arrivals.append((engine.now, u)),
            SessionTiming(latency=0.05, jitter=0.0, mrai=10.0),
        )
        session.send(ann(path=(1,)))        # flushed; stale timer armed @12
        session.reopen()
        session.send(ann(path=(2,)))        # flushed; new timer armed @8
        session.send(ann(PFX2, path=(3,)))  # pending under the new timer
        engine.run_until(9.0)               # t=8: timer fires, flushes PFX2,
        #                                     re-arms @20
        session.send(ann(path=(4,)))        # pending under the t=20 timer
        engine.run_until(13.0)              # stale t=12 timer fires
        # The stale timer must not have flushed path=(4,).
        assert [u.as_path for _, u in arrivals] == [(2,), (3,)]
        assert session._mrai_running
        assert session._pending
        engine.run_until_idle()
        when, last = arrivals[-1]
        assert last.as_path == (4,)
        assert when >= 20.0
