"""The catchment cache: correctness and route-version invalidation."""

from repro.core.controller import CdnController
from repro.core.techniques import ReactiveAnycast
from repro.dataplane.forwarding import ForwardingPlane
from repro.topology.testbed import SPECIFIC_PREFIX, SUPERPREFIX
from repro.workload import CatchmentCache

from tests.conftest import FAST_TIMING


def converged_plane(deployment, seed=5):
    network = deployment.topology.build_network(seed=seed, timing=FAST_TIMING)
    controller = CdnController(
        network=network,
        deployment=deployment,
        technique=ReactiveAnycast(),
        prefix=SPECIFIC_PREFIX,
        superprefix=SUPERPREFIX,
        detection_delay=1.0,
    )
    controller.deploy("sea1")
    network.converge()
    return ForwardingPlane(network, deployment.topology), controller


class TestResolution:
    def test_matches_uncached_walk(self, deployment):
        plane, _ = converged_plane(deployment)
        cache = CatchmentCache(plane, deployment)
        for info in deployment.topology.web_client_ases()[:10]:
            resolution = cache.resolve(info.node_id)
            result = plane.snapshot_path(info.node_id, cache.dst)
            if result.delivered:
                assert resolution.node == result.delivered_to
                assert resolution.site == deployment.site_of_node(result.delivered_to)
            else:
                assert resolution.reason is not None

    def test_hot_path_is_cached(self, deployment):
        plane, _ = converged_plane(deployment)
        cache = CatchmentCache(plane, deployment)
        client = deployment.topology.web_client_ases()[0].node_id
        first = cache.resolve(client)
        assert cache.misses == 1
        for _ in range(100):
            assert cache.resolve(client) == first
        assert cache.misses == 1
        assert cache.hits == 100
        assert cache.invalidations == 0


class TestInvalidation:
    def test_every_version_bump_invalidates(self, deployment):
        """Property: any route_version move flushes the whole memo."""
        plane, _ = converged_plane(deployment)
        cache = CatchmentCache(plane, deployment)
        clients = [i.node_id for i in deployment.topology.web_client_ases()[:5]]
        for client in clients:
            cache.resolve(client)
        assert len(cache) == len(clients)
        network = plane.network
        for step in range(1, 6):
            network.route_version += 1
            cache.resolve(clients[0])
            # The memo restarted from empty: only the one re-resolved entry.
            assert len(cache) == 1
            assert cache.invalidations == step
            for client in clients[1:]:
                cache.resolve(client)

    def test_fib_install_bumps_route_version(self, deployment):
        plane, controller = converged_plane(deployment)
        network = plane.network
        before = network.route_version
        assert before > 0  # convergence installed plenty of FIB entries
        controller.fail_site("sea1")
        network.converge()
        assert network.route_version > before

    def test_reroute_changes_cached_answer(self, deployment):
        plane, controller = converged_plane(deployment)
        cache = CatchmentCache(plane, deployment)
        # A client whose requests land at the deployed specific site.
        client = next(
            info.node_id
            for info in deployment.topology.web_client_ases()
            if cache.resolve(info.node_id).site == "sea1"
        )
        controller.fail_site("sea1")
        plane.network.converge()
        after = cache.resolve(client)
        assert cache.invalidations >= 1
        assert after.site != "sea1"

    def test_stable_version_never_invalidates(self, deployment):
        plane, _ = converged_plane(deployment)
        cache = CatchmentCache(plane, deployment)
        clients = [i.node_id for i in deployment.topology.web_client_ases()[:8]]
        for _ in range(3):
            for client in clients:
                cache.resolve(client)
        assert cache.invalidations == 0
        assert cache.misses == len(clients)
