"""Tests for CDF/summary statistics with censoring."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.measurement.stats import Cdf, summarize


class TestCdf:
    def test_basic_quantiles(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.quantile(0.25) == 1.0
        assert cdf.median() == 2.0
        assert cdf.quantile(1.0) == 4.0

    def test_at(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(2.0) == 0.5
        assert cdf.at(10.0) == 1.0

    def test_censored_mass_shifts_quantiles(self):
        """4 observed + 4 censored: the median is the 4th of 8 samples,
        but p90 falls into the censored tail."""
        cdf = Cdf([1.0, 2.0, 3.0, 4.0], censored=4)
        assert cdf.n == 8
        assert cdf.median() == 4.0
        assert cdf.quantile(0.9) == math.inf

    def test_at_with_censored(self):
        cdf = Cdf([1.0], censored=1)
        assert cdf.at(100.0) == 0.5

    def test_from_optional(self):
        cdf = Cdf.from_optional([1.0, None, 2.0, None])
        assert cdf.observed == 2
        assert cdf.censored == 2

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            Cdf([]).median()

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            Cdf([-1.0])

    def test_negative_censored_rejected(self):
        with pytest.raises(ValueError):
            Cdf([], censored=-1)

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            Cdf([1.0]).quantile(1.1)

    def test_fully_censored(self):
        cdf = Cdf([], censored=5)
        assert cdf.median() == math.inf
        assert cdf.at(1e9) == 0.0

    def test_fully_censored_every_quantile_is_inf(self):
        """With zero observations every quantile falls in the censored
        tail: 'not yet reconnected' at any probability."""
        cdf = Cdf([], censored=3)
        for q in (0.01, 0.5, 0.9, 1.0):
            assert cdf.quantile(q) == math.inf

    def test_at_denominator_includes_censored_mass(self):
        """at() is P(X <= x) over *all* n samples; censored targets sit
        in the denominator even though they never produce a value."""
        cdf = Cdf([1.0, 2.0], censored=2)
        assert cdf.n == 4
        assert cdf.at(1.0) == 0.25
        assert cdf.at(2.0) == 0.5
        assert cdf.at(math.inf) == 0.5  # the censored half never arrives

    def test_series_monotone(self):
        xs, ys = Cdf([3.0, 1.0, 2.0]).series()
        assert xs == [1.0, 2.0, 3.0]
        assert ys == [pytest.approx(1 / 3), pytest.approx(2 / 3), pytest.approx(1.0)]

    def test_series_with_censoring_tops_below_one(self):
        xs, ys = Cdf([1.0], censored=1).series()
        assert ys == [0.5]

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_quantile_monotone(self, samples):
        cdf = Cdf(samples)
        qs = [cdf.quantile(q / 10) for q in range(1, 11)]
        assert qs == sorted(qs)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0, max_value=1e6),
    )
    def test_at_and_quantile_consistent(self, samples, x):
        cdf = Cdf(samples)
        p = cdf.at(x)
        if p > 0:
            assert cdf.quantile(p) <= x


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, None])
        assert summary.n == 4
        assert summary.censored == 1
        assert summary.median == 2.0
        assert summary.p90 == math.inf
        assert summary.mean_observed == pytest.approx(2.0)

    def test_row_rendering(self):
        row = summarize([1.0, None]).row()
        assert "censored=1" in row

    def test_summarize_empty_list(self):
        """No samples at all: n=0 and NaN quantiles, never a crash
        (a sweep technique whose cells all failed hits this path)."""
        summary = summarize([])
        assert summary.n == 0
        assert summary.censored == 0
        assert math.isnan(summary.p10)
        assert math.isnan(summary.median)
        assert math.isnan(summary.p90)
        assert math.isnan(summary.mean_observed)
        assert "n=0" in summary.row()

    def test_summarize_all_censored(self):
        summary = summarize([None, None, None])
        assert summary.n == 3
        assert summary.censored == 3
        assert summary.median == math.inf
        assert math.isnan(summary.mean_observed)
        assert "p50=inf" in summary.row()
