"""Tests for the DNS-bound unicast failover model."""


from repro.core.unicast_failover import (
    UnicastFailoverConfig,
    simulate_unicast_failover,
)
from repro.dns.client import TtlViolationModel


class TestUnicastFailover:
    def test_compliant_clients_bounded_by_ttl(self):
        """With TTL honoured everywhere, no client outlasts one full TTL
        (client cache) plus one more (resolver cache)."""
        config = UnicastFailoverConfig(
            n_clients=200, ttl=20.0, violation=TtlViolationModel.compliant(), seed=1
        )
        result = simulate_unicast_failover(config)
        assert len(result.switch_delays) == 200
        assert max(result.switch_delays) <= 40.0 + 1e-9
        assert result.median() <= 20.0 + 1e-9

    def test_median_scales_with_ttl(self):
        small = simulate_unicast_failover(
            UnicastFailoverConfig(n_clients=200, ttl=20.0,
                                  violation=TtlViolationModel.compliant(), seed=2)
        )
        large = simulate_unicast_failover(
            UnicastFailoverConfig(n_clients=200, ttl=600.0,
                                  violation=TtlViolationModel.compliant(), seed=2)
        )
        assert large.median() > 5 * small.median()

    def test_violators_inflate_the_tail(self):
        """The paper's §2 argument: TTL violators keep using the dead
        site long after expiry, far beyond anycast-scale failover."""
        violating = simulate_unicast_failover(
            UnicastFailoverConfig(
                n_clients=300, ttl=20.0,
                violation=TtlViolationModel(violation_prob=0.3), seed=3,
            )
        )
        assert violating.quantile(0.9) > 100.0

    def test_quantiles_monotone(self):
        result = simulate_unicast_failover(UnicastFailoverConfig(n_clients=100, seed=4))
        qs = [result.quantile(q / 10) for q in range(1, 10)]
        assert qs == sorted(qs)

    def test_unicast_slower_than_typical_anycast_failover(self):
        """The cross-technique claim: even with a 20 s TTL, DNS-bound
        median failover exceeds the ~10 s BGP-side failover of anycast
        and the paper's techniques."""
        result = simulate_unicast_failover(UnicastFailoverConfig(seed=5))
        assert result.median() > 8.0

    def test_deterministic(self):
        a = simulate_unicast_failover(UnicastFailoverConfig(seed=6))
        b = simulate_unicast_failover(UnicastFailoverConfig(seed=6))
        assert a.switch_delays == b.switch_delays
