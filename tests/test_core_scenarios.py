"""Tests for site recovery and multi-event scenarios."""

import pytest

from repro.bgp.session import SessionTiming
from repro.core.controller import CdnController
from repro.core.scenarios import ScenarioEvent, ScenarioRunner
from repro.core.techniques import Anycast, ReactiveAnycast, Unicast
from repro.dns.authoritative import AuthoritativeServer, StaticMapping
from repro.topology.testbed import SPECIFIC_PREFIX, SUPERPREFIX

from tests.conftest import FAST_TIMING

SCENARIO_TIMING = SessionTiming(latency=0.05, jitter=0.3, mrai=5.0, busy_prob=0.2)


def make_controller(deployment, technique, dns=None):
    network = deployment.topology.build_network(seed=12, timing=FAST_TIMING)
    return CdnController(
        network=network,
        deployment=deployment,
        technique=technique,
        prefix=SPECIFIC_PREFIX,
        superprefix=SUPERPREFIX,
        detection_delay=1.0,
        dns=dns,
    )


class TestRecovery:
    def test_recovered_site_reannounces(self, deployment):
        controller = make_controller(deployment, Anycast())
        controller.deploy("sea1")
        controller.network.converge()
        controller.fail_site("sea1")
        controller.network.converge()
        controller.recover_site("sea1")
        controller.network.converge()
        node = deployment.site_node("sea1")
        assert SPECIFIC_PREFIX in controller.network.routers[node].originated_prefixes()

    def test_reactive_emergency_announcements_rolled_back(self, deployment):
        controller = make_controller(deployment, ReactiveAnycast())
        controller.deploy("sea1")
        controller.network.converge()
        controller.fail_site("sea1")
        controller.network.converge()
        ams = deployment.site_node("ams")
        assert SPECIFIC_PREFIX in controller.network.routers[ams].originated_prefixes()
        controller.recover_site("sea1")
        controller.network.converge()
        assert SPECIFIC_PREFIX not in controller.network.routers[ams].originated_prefixes()
        # Control is back at the intended site: clients route to sea1.
        client = deployment.topology.web_client_ases()[0].node_id
        route = controller.network.router(client).best_route(SPECIFIC_PREFIX)
        assert route is not None
        assert route.origin_node == deployment.site_node("sea1")

    def test_recover_before_deploy_rejected(self, deployment):
        controller = make_controller(deployment, Anycast())
        with pytest.raises(RuntimeError):
            controller.recover_site("sea1")

    def test_recover_unknown_site_rejected(self, deployment):
        controller = make_controller(deployment, Anycast())
        controller.deploy("sea1")
        with pytest.raises(KeyError):
            controller.recover_site("lhr")

    def test_dns_restored_on_recovery(self, deployment):
        addresses = {
            site: SPECIFIC_PREFIX.address(10 + i)
            for i, site in enumerate(deployment.site_names)
        }
        dns = AuthoritativeServer(
            "cdn.example", StaticMapping(default_site="sea1"), addresses, ttl=20.0
        )
        controller = make_controller(deployment, Unicast(), dns=dns)
        controller.deploy("sea1")
        controller.network.converge()
        controller.fail_site("sea1")
        controller.network.run_for(2.0)
        assert "sea1" not in dns.site_addresses
        controller.recover_site("sea1")
        assert "sea1" in dns.site_addresses
        assert dns.policy.default_site == "sea1"


class TestScenarioEvents:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            ScenarioEvent(at=-1.0, kind="fail", site="sea1")
        with pytest.raises(ValueError):
            ScenarioEvent(at=0.0, kind="explode", site="sea1")


class TestScenarioRunner:
    def make_runner(self, deployment, technique, **kwargs):
        defaults = dict(
            topology=deployment.topology,
            deployment=deployment,
            technique=technique,
            specific_site="sea1",
            duration_s=120.0,
            n_targets=10,
            timing=SCENARIO_TIMING,
            bucket_s=10.0,
        )
        defaults.update(kwargs)
        return ScenarioRunner(**defaults)

    def test_quiet_scenario_fully_available(self, deployment):
        runner = self.make_runner(deployment, ReactiveAnycast())
        result = runner.run()
        assert result.mean_availability() > 0.99
        assert result.downtime_s() == 0.0

    def test_fail_and_recover_dip(self, deployment):
        """Anycast: availability dips around the failure for the failed
        site's catchment, then returns once other sites absorb it, and
        stays up after recovery."""
        from repro.measurement.catchment import anycast_catchment

        catchment = anycast_catchment(
            deployment.topology, deployment, timing=FAST_TIMING
        )
        sea1_clients = [n for n, s in catchment.items() if s == "sea1"][:10]
        assert sea1_clients, "sea1 must have a catchment"
        runner = self.make_runner(
            deployment, Anycast(), target_nodes=sea1_clients
        )
        runner.fail(30.0, "sea1").recover(80.0, "sea1")
        result = runner.run()
        availability = result.availability()
        # Something was lost around the failure bucket...
        assert min(availability[3:6]) < 1.0
        # ...but the episode ends healthy.
        assert availability[-2] > 0.9
        assert result.worst_bucket() < 1.0

    def test_unicast_outage_is_unbounded_without_dns(self, deployment):
        """Pure unicast with no DNS reaction: targets stay dark from the
        failure to the end of the scenario."""
        runner = self.make_runner(deployment, Unicast())
        runner.fail(30.0, "sea1")
        result = runner.run()
        availability = result.availability()
        assert availability[1] > 0.9          # before failure
        assert max(availability[5:]) < 0.2    # after failure: dark
        assert result.downtime_s() >= 60.0

    def test_reactive_anycast_bounds_outage(self, deployment):
        runner = self.make_runner(deployment, ReactiveAnycast())
        runner.fail(30.0, "sea1")
        result = runner.run()
        availability = result.availability()
        # Recovered within a couple of buckets of the failure.
        assert max(availability[6:]) > 0.9
        assert result.downtime_s(threshold=0.5) <= 30.0

    def test_rolling_regional_outage(self, deployment):
        """Fail two east-coast sites in sequence under reactive-anycast:
        service survives (the paper's availability goal)."""
        runner = self.make_runner(deployment, ReactiveAnycast(), specific_site="bos")
        runner.fail(30.0, "bos").fail(50.0, "atl")
        result = runner.run()
        assert result.mean_availability() > 0.7
        assert result.availability()[-2] > 0.9

    def test_report_bookkeeping(self, deployment):
        runner = self.make_runner(deployment, Anycast())
        runner.fail(30.0, "sea1")
        result = runner.run()
        assert [e.kind for e in result.events] == ["fail"]
        sent_total = sum(sent for _, sent in result.buckets)
        assert sent_total > 0


class TestRecoveryGrace:
    def test_make_before_break_improves_flap_availability(self, deployment):
        """Rolling back emergency announcements only after the recovered
        site's routes propagate (recovery_grace) strictly helps during a
        flapping episode under reactive-anycast."""
        from repro.bgp.session import DEFAULT_INTERNET_TIMING
        from repro.measurement.catchment import anycast_catchment

        catchment = anycast_catchment(
            deployment.topology, deployment, timing=FAST_TIMING
        )
        sea1_clients = [n for n, s in catchment.items() if s == "sea1"][:10]

        def run(grace):
            runner = ScenarioRunner(
                topology=deployment.topology,
                deployment=deployment,
                technique=ReactiveAnycast(),
                specific_site="sea1",
                duration_s=240.0,
                bucket_s=10.0,
                target_nodes=sea1_clients,
                timing=DEFAULT_INTERNET_TIMING,
                recovery_grace=grace,
            )
            runner.fail(60.0, "sea1").recover(120.0, "sea1")
            return runner.run().mean_availability()

        abrupt = run(0.0)
        graceful = run(60.0)
        assert graceful >= abrupt


class TestDrain:
    def test_drain_shifts_catchment_without_loss(self, deployment):
        """Maintenance drain under anycast: the site's catchment moves to
        other sites with zero downtime (make-before-break), then returns
        after undrain."""
        from repro.measurement.catchment import anycast_catchment

        catchment = anycast_catchment(
            deployment.topology, deployment, timing=FAST_TIMING
        )
        sea1_clients = [n for n, s in catchment.items() if s == "sea1"][:10]
        runner = ScenarioRunner(
            topology=deployment.topology,
            deployment=deployment,
            technique=Anycast(),
            specific_site="sea1",
            duration_s=180.0,
            bucket_s=10.0,
            target_nodes=sea1_clients,
            timing=SCENARIO_TIMING,
        )
        runner.drain(40.0, "sea1").undrain(120.0, "sea1")
        result = runner.run()
        # Zero downtime through the whole maintenance window.
        assert result.mean_availability() > 0.98
        assert result.downtime_s() == 0.0

    def test_drained_site_loses_catchment(self, deployment):
        """Draining a site with in-place prepended re-origination moves
        most of its anycast catchment; undrain restores it."""
        from repro.core.controller import CdnController
        from repro.measurement.catchment import catchment_from_network

        network = deployment.topology.build_network(seed=15, timing=FAST_TIMING)
        controller = CdnController(
            network=network,
            deployment=deployment,
            technique=Anycast(),
            prefix=SPECIFIC_PREFIX,
            superprefix=SUPERPREFIX,
        )
        controller.deploy("ams")
        network.converge()
        clients = [a.node_id for a in deployment.topology.web_client_ases()]
        before = catchment_from_network(network, deployment, SPECIFIC_PREFIX, clients)
        before_count = sum(1 for s in before.values() if s == "ams")
        controller.drain_site("ams", prepend=5)
        network.converge()
        after = catchment_from_network(network, deployment, SPECIFIC_PREFIX, clients)
        after_count = sum(1 for s in after.values() if s == "ams")
        assert before_count > 0
        assert after_count < before_count
        # Nobody is blackholed: every client still has a serving site.
        assert all(s is not None for s in after.values())
        controller.undrain_site("ams")
        network.converge()
        restored = catchment_from_network(network, deployment, SPECIFIC_PREFIX, clients)
        assert sum(1 for s in restored.values() if s == "ams") == before_count

    def test_drain_unknown_site(self, deployment):
        controller = make_controller(deployment, Anycast())
        with pytest.raises(KeyError):
            controller.drain_site("lhr")
        controller.deploy("sea1")
        with pytest.raises(KeyError):
            controller.undrain_site("lhr")
