"""Unit-level tests for the appendix harness helpers."""

import pytest

from repro.measurement.appendix import (
    AppendixSamples,
    _collector_over_core,
    _hypergiant_prefixes,
    announced_prefix_snapshot,
)
from repro.topology.generator import generate_topology

from tests.conftest import FAST_TIMING


@pytest.fixture(scope="module")
def topo():
    return generate_topology()


class TestAppendixSamples:
    def test_combined_concatenates(self):
        samples = AppendixSamples(hypergiant=[1.0, 2.0], testbed=[3.0])
        assert sorted(samples.combined()) == [1.0, 2.0, 3.0]

    def test_empty(self):
        assert AppendixSamples().combined() == []


class TestHypergiantPrefixes:
    def test_per_giant_count(self, topo):
        prefixes = _hypergiant_prefixes(topo, per_giant=2)
        assert len(prefixes) == topo.params.n_hypergiant
        for giant, blocks in prefixes.items():
            assert len(blocks) == 2
            parent = topo.ases[giant].prefix
            for block in blocks:
                assert block.length == 24
                assert parent.covers(block)

    def test_prefixes_disjoint_across_giants(self, topo):
        prefixes = _hypergiant_prefixes(topo, per_giant=3)
        seen = set()
        for blocks in prefixes.values():
            for block in blocks:
                assert block not in seen
                seen.add(block)


class TestCollectorOverCore:
    def test_attaches_core_routers_only(self, topo):
        network = topo.build_network(timing=FAST_TIMING)
        collector = _collector_over_core(network)
        assert collector.peers
        for peer in collector.peers:
            assert peer.startswith(("t1-", "tr-", "rg-"))
        # Edge networks never feed the collector.
        assert not any(p.startswith(("eye-", "uni-", "stub-")) for p in collector.peers)


class TestSnapshotCalibration:
    def test_one_in_three_giants_announce_covering(self, topo):
        snapshot = announced_prefix_snapshot(topo)
        covering = [
            giant
            for giant, prefixes in snapshot.items()
            if any(p.length < 24 for p in prefixes)
        ]
        expected = (topo.params.n_hypergiant + 2) // 3
        assert len(covering) == expected
