"""Property tests for session delivery semantics.

The MRAI machinery coalesces, cancels, and delays updates; the invariant
that must survive all of it is *eventual consistency*: once the wire is
quiet, the receiver's view of each prefix equals the sender's final
state, and deliveries never reorder.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.bgp.engine import EventEngine
from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.policy import Relationship
from repro.bgp.session import Session, SessionTiming
from repro.net.addr import IPv4Prefix

PREFIXES = [IPv4Prefix.parse(f"184.164.{i}.0/24") for i in range(4)]

#: (prefix index, announce?) action sequences
actions_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), st.booleans()),
    min_size=1,
    max_size=40,
)

timing_strategy = st.builds(
    SessionTiming,
    latency=st.floats(min_value=0.0, max_value=0.5),
    jitter=st.floats(min_value=0.0, max_value=2.0),
    mrai=st.floats(min_value=0.0, max_value=20.0),
    busy_prob=st.floats(min_value=0.0, max_value=1.0),
)


def drive(actions, timing, seed, gap=0.3):
    """Apply the action sequence through one session; return the
    receiver's final per-prefix state and the delivery order."""
    engine = EventEngine()
    received: list = []
    session = Session(
        engine,
        random.Random(seed),
        "a",
        "b",
        Relationship.CUSTOMER,
        received.append,
        timing,
    )
    sender_state: dict = {}
    for i, (prefix_index, announce) in enumerate(actions):
        prefix = PREFIXES[prefix_index]
        if announce:
            update = Announcement(
                sender="a", prefix=prefix, as_path=(100, i), origin_node="a"
            )
            sender_state[prefix] = update
        else:
            update = Withdrawal(sender="a", prefix=prefix)
            sender_state[prefix] = None
        session.send(update)
        engine.run_until(engine.now + gap)
    engine.run_until_idle()

    receiver_state: dict = {}
    for update in received:
        if isinstance(update, Announcement):
            receiver_state[update.prefix] = update
        else:
            receiver_state[update.prefix] = None
    return sender_state, receiver_state, received


class TestEventualConsistency:
    @settings(max_examples=60, deadline=None)
    @given(actions_strategy, timing_strategy, st.integers(min_value=0, max_value=99))
    def test_receiver_converges_to_sender_state(self, actions, timing, seed):
        sender_state, receiver_state, _ = drive(actions, timing, seed)
        for prefix, final in sender_state.items():
            got = receiver_state.get(prefix)
            if final is None:
                assert got is None, f"{prefix}: receiver kept a withdrawn route"
            else:
                assert got is not None, f"{prefix}: announcement never arrived"
                assert got.as_path == final.as_path, f"{prefix}: stale attributes"

    @settings(max_examples=30, deadline=None)
    @given(actions_strategy, st.integers(min_value=0, max_value=99))
    def test_no_withdrawal_for_unannounced_prefix(self, actions, seed):
        """The wire never carries a withdrawal for a prefix the receiver
        has not been told about."""
        timing = SessionTiming(latency=0.05, jitter=0.5, mrai=5.0, busy_prob=0.3)
        _, _, received = drive(actions, timing, seed)
        known: set = set()
        for update in received:
            if isinstance(update, Announcement):
                known.add(update.prefix)
            else:
                assert update.prefix in known
                known.discard(update.prefix)

    @settings(max_examples=30, deadline=None)
    @given(actions_strategy, timing_strategy, st.integers(min_value=0, max_value=99))
    def test_per_prefix_delivery_order_preserved(self, actions, timing, seed):
        """For each prefix, delivered updates follow the send order of
        the (non-coalesced) updates that survive."""
        sender_state, _, received = drive(actions, timing, seed)
        # The final delivered update per prefix must be the final state;
        # intermediate deliveries only ever move forward in send order.
        last_path: dict = {}
        for update in received:
            if isinstance(update, Announcement):
                previous = last_path.get(update.prefix)
                if previous is not None:
                    assert update.as_path[1] >= previous
                last_path[update.prefix] = update.as_path[1]
