"""Unit tests for AS classification and relationship datasets."""

import random

import pytest

from repro.bgp.policy import Relationship
from repro.topology.relationships import AsClass, RelationshipDataset


class TestAsClass:
    def test_research_classification(self):
        assert AsClass.RE_BACKBONE.is_research
        assert AsClass.UNIVERSITY.is_research
        assert not AsClass.TRANSIT.is_research
        assert not AsClass.TIER1.is_research

    def test_distributed_classification(self):
        assert AsClass.TIER1.is_distributed
        assert AsClass.RE_BACKBONE.is_distributed
        assert AsClass.HYPERGIANT.is_distributed
        assert not AsClass.EYEBALL.is_distributed
        assert not AsClass.TRANSIT.is_distributed
        assert not AsClass.CDN.is_distributed


class TestRelationshipDataset:
    LINKS = [
        (1, 2, Relationship.PROVIDER),  # 2 is 1's provider
        (2, 3, Relationship.PEER),
        (3, 4, Relationship.CUSTOMER),  # 4 is 3's customer
    ]

    def test_lookup_both_directions(self):
        ds = RelationshipDataset.from_links(self.LINKS)
        assert ds.lookup(1, 2) is Relationship.PROVIDER
        assert ds.lookup(2, 1) is Relationship.CUSTOMER
        assert ds.lookup(2, 3) is Relationship.PEER
        assert ds.lookup(3, 2) is Relationship.PEER

    def test_lookup_unknown(self):
        ds = RelationshipDataset.from_links(self.LINKS)
        assert ds.lookup(1, 99) is None

    def test_len_counts_links_once(self):
        ds = RelationshipDataset.from_links(self.LINKS)
        assert len(ds) == 3

    def test_preference_rank_ordering(self):
        """Customer(0) < peer(1) < provider(2): Appendix C.1's business
        preference order."""
        ds = RelationshipDataset.from_links(self.LINKS)
        assert ds.preference_rank(3, 4) == 0
        assert ds.preference_rank(2, 3) == 1
        assert ds.preference_rank(1, 2) == 2

    def test_preference_rank_unclassified(self):
        ds = RelationshipDataset.from_links(self.LINKS)
        assert ds.preference_rank(1, 99) is None

    def test_partial_coverage_drops_links(self):
        links = [(i, i + 100, Relationship.PEER) for i in range(200)]
        ds = RelationshipDataset.from_links(links, coverage=0.5, rng=random.Random(1))
        assert 50 < len(ds) < 150

    def test_full_coverage_keeps_everything(self):
        links = [(i, i + 100, Relationship.PEER) for i in range(50)]
        ds = RelationshipDataset.from_links(links, coverage=1.0)
        assert len(ds) == 50

    def test_coverage_validated(self):
        with pytest.raises(ValueError):
            RelationshipDataset.from_links([], coverage=1.5)


class TestTopologyDataset:
    def test_dataset_matches_ground_truth(self, small_topology):
        ds = small_topology.relationship_dataset()
        link = small_topology.links[0]
        a_asn = small_topology.ases[link.a].asn
        b_asn = small_topology.ases[link.b].asn
        assert ds.lookup(a_asn, b_asn) is link.relationship
