"""Tests for FIB-driven forwarding (static and event-driven)."""


from repro.bgp.policy import Relationship
from repro.dataplane.forwarding import (
    DROP_LOG_LIMIT,
    DropReason,
    ForwardingPlane,
)
from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.packet import Packet
from repro.topology.generator import Topology, TopologyParams
from repro.topology.geo import Location
from repro.topology.relationships import AsClass, AsInfo

from tests.conftest import FAST_TIMING

PFX = IPv4Prefix.parse("184.164.244.0/24")
ADDR = IPv4Address.parse("184.164.244.10")


def chain_topology(n: int = 4) -> Topology:
    topo = Topology(params=TopologyParams())
    loc = Location("us-west", 0.0, 0.0)
    client = IPv4Prefix.parse("10.0.0.0/24")
    for i in range(n):
        topo.add_as(
            AsInfo(
                f"r{i}", 100 + i,
                AsClass.EYEBALL if i == 0 else AsClass.TRANSIT,
                loc,
                prefix=client if i == 0 else None,
                tags={"web-clients"} if i == 0 else set(),
            )
        )
    for i in range(n - 1):
        topo.link(f"r{i}", f"r{i + 1}", Relationship.PROVIDER)
    return topo


def make_plane(n: int = 4):
    topo = chain_topology(n)
    net = topo.build_network(seed=0, timing=FAST_TIMING)
    return topo, net, ForwardingPlane(net, topo)


class TestSnapshotPath:
    def test_delivery_at_origin(self):
        topo, net, plane = make_plane()
        net.announce("r0", PFX)
        net.converge()
        result = plane.snapshot_path("r3", ADDR)
        assert result.delivered
        assert result.delivered_to == "r0"
        assert result.path == ("r3", "r2", "r1", "r0")

    def test_no_route(self):
        topo, net, plane = make_plane()
        result = plane.snapshot_path("r3", ADDR)
        assert not result.delivered
        assert result.drop_reason is DropReason.NO_ROUTE

    def test_loop_detected(self):
        topo, net, plane = make_plane(2)
        # Manufacture a transient loop by hand-editing FIBs.
        net.router("r0").fib.insert(PFX, "r1")
        net.router("r1").fib.insert(PFX, "r0")
        result = plane.snapshot_path("r0", ADDR)
        assert not result.delivered
        assert result.drop_reason is DropReason.LOOP


class TestEventDrivenForward:
    def test_delivery_consumes_latency(self):
        topo, net, plane = make_plane()
        net.announce("r0", PFX)
        net.converge()
        results = []
        start = net.now
        plane.forward("r3", Packet(src=ADDR, dst=ADDR), results.append)
        net.converge()
        assert len(results) == 1
        assert results[0].delivered_to == "r0"
        assert results[0].completed_at > start

    def test_drop_on_no_route_records_diagnostics(self):
        topo, net, plane = make_plane()
        results = []
        plane.forward("r3", Packet(src=ADDR, dst=ADDR), results.append)
        net.converge()
        assert not results[0].delivered
        assert plane.drops

    def test_stable_loop_dropped_as_loop(self):
        """A packet caught in a *stable* loop (every revisited FIB entry
        unchanged) is dropped as LOOP on the first revisit instead of
        burning all MAX_HOPS hops to a TTL_EXCEEDED drop."""
        topo, net, plane = make_plane(2)
        net.router("r0").fib.insert(PFX, "r1")
        net.router("r1").fib.insert(PFX, "r0")
        results = []
        plane.forward("r0", Packet(src=ADDR, dst=ADDR), results.append)
        net.converge()
        assert not results[0].delivered
        assert results[0].drop_reason is DropReason.LOOP
        assert len(results[0].path) <= 4  # r0 r1 r0 -- not MAX_HOPS

    def test_transient_loop_keeps_forwarding(self):
        """Revisiting a node whose FIB entry *changed* mid-flight is a
        transient loop (convergence in progress): the packet keeps going
        and can still be delivered."""
        topo, net, plane = make_plane(2)
        net.router("r0").fib.insert(PFX, "r1")
        net.router("r1").fib.insert(PFX, "r0")
        results = []
        plane.forward("r0", Packet(src=ADDR, dst=ADDR), results.append)
        # Reroute r0 while the packet is on its way to r1 and back: the
        # revisit of r0 sees a *different* next hop (itself -- a local
        # delivery), so it is not treated as a stable loop.
        net.router("r0").fib.insert(PFX, "r0")
        net.converge()
        assert results[0].delivered_to == "r0"
        assert results[0].drop_reason is None
        assert results[0].path.count("r0") == 2

    def test_drop_log_bounded_under_churn(self):
        """Long sweeps churn out drops forever; the diagnostic log is a
        ring buffer while the totals keep counting."""
        topo, net, plane = make_plane(2)  # no route announced: every
        results = []                      # forward is a NO_ROUTE drop
        for _ in range(DROP_LOG_LIMIT + 100):
            plane.forward("r1", Packet(src=ADDR, dst=ADDR), results.append)
        net.converge()
        assert len(results) == DROP_LOG_LIMIT + 100
        assert plane.dropped_total == DROP_LOG_LIMIT + 100
        assert len(plane.drops) == DROP_LOG_LIMIT

    def test_packet_rerouted_mid_flight(self):
        """A packet in flight follows whatever FIBs say at each hop: if
        the route flips while it travels, the delivery point changes --
        the §3 convergence phenomenon."""
        topo = chain_topology(4)
        net = topo.build_network(seed=0, timing=FAST_TIMING)
        plane = ForwardingPlane(net, topo)
        net.announce("r0", PFX)
        net.converge()
        results = []
        plane.forward("r3", Packet(src=ADDR, dst=ADDR), results.append)
        # Flip r1's FIB toward a local origin while the packet is at r2.
        net.router("r1").fib.insert(PFX, "r1")
        net.converge()
        assert results[0].delivered_to == "r1"


class TestClientDirection:
    def test_owner_of(self):
        topo, net, plane = make_plane()
        assert plane.owner_of(IPv4Address.parse("10.0.0.1")) == "r0"
        assert plane.owner_of(IPv4Address.parse("11.0.0.1")) is None

    def test_latency_to_client(self):
        topo, net, plane = make_plane()
        latency = plane.latency_to_client("r3", "r0")
        assert latency is not None
        assert latency > 0

    def test_latency_unreachable(self):
        topo = chain_topology(2)
        lonely = AsInfo("x", 999, AsClass.STUB, Location("us-west", 0, 0))
        topo.add_as(lonely)
        net = topo.build_network(seed=0, timing=FAST_TIMING)
        plane = ForwardingPlane(net, topo)
        assert plane.latency_to_client("r1", "x") is None

    def test_static_routes_cached(self):
        topo, net, plane = make_plane()
        first = plane.static_routes_to("r0")
        second = plane.static_routes_to("r0")
        assert first is second

    def test_owner_of_matches_linear_scan(self, topology):
        """The LPM-trie lookup must agree with a scan of every AS's
        client prefix, including longest-match and miss cases."""
        net = topology.build_network(seed=0, timing=FAST_TIMING)
        plane = ForwardingPlane(net, topology)

        def scan(address):
            best = None
            for info in topology.ases.values():
                if info.prefix is not None and info.prefix.contains(address):
                    if best is None or info.prefix.length > best[0]:
                        best = (info.prefix.length, info.node_id)
            return best[1] if best is not None else None

        probes = [IPv4Address.parse("11.11.11.11")]  # guaranteed miss
        for info in topology.ases.values():
            if info.prefix is not None:
                probes.append(info.prefix.address(1))
        for address in probes:
            assert plane.owner_of(address) == scan(address)

    def test_owner_trie_rebuilds_when_ases_added(self):
        topo, net, plane = make_plane()
        late_prefix = IPv4Prefix.parse("12.0.0.0/24")
        assert plane.owner_of(late_prefix.address(1)) is None  # trie built
        topo.add_as(
            AsInfo("late", 900, AsClass.STUB, Location("us-west", 0, 0),
                   prefix=late_prefix)
        )
        assert plane.owner_of(late_prefix.address(1)) == "late"
