"""Unit tests for the telemetry subsystem (metrics, traces, registry)."""

from __future__ import annotations

import json
import logging
import math
import random

import pytest

from repro import telemetry
from repro.telemetry import logs
from repro.telemetry.metrics import Counter, Gauge, Histogram


class TestHistogram:
    def test_empty_quantiles_are_nan(self):
        h = Histogram("t")
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.median())
        assert math.isnan(h.mean)
        summary = h.summary()
        assert summary["count"] == 0
        assert math.isnan(summary["p99"])

    def test_single_sample_is_exact_everywhere(self):
        h = Histogram("t")
        h.observe(3.7)
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert h.quantile(q) == 3.7
        assert h.mean == 3.7
        assert h.summary()["min"] == h.summary()["max"] == 3.7

    def test_quantile_bounds_validated(self):
        h = Histogram("t")
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_two_samples_median(self):
        h = Histogram("t")
        h.observe(1.0)
        h.observe(100.0)
        # Nearest-rank: the p50 of two samples is the first.
        assert h.quantile(0.5) == pytest.approx(1.0, rel=0.06)
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.0) == 1.0

    def test_streaming_quantiles_track_exact_within_bucket_error(self):
        rng = random.Random(42)
        values = [rng.uniform(0.001, 500.0) for _ in range(20000)]
        h = Histogram("t")
        h.observe_many(values)
        ranked = sorted(values)
        for q in (0.1, 0.5, 0.95, 0.99):
            exact = ranked[max(0, math.ceil(q * len(ranked)) - 1)]
            assert h.quantile(q) == pytest.approx(exact, rel=0.06)

    def test_zero_and_negative_go_to_underflow(self):
        h = Histogram("t")
        h.observe(0.0)
        h.observe(-5.0)
        h.observe(10.0)
        assert h.count == 3
        assert h.min == -5.0
        # p50 of three samples is the second-smallest: the underflow
        # bucket, represented by the running minimum.
        assert h.quantile(0.34) == -5.0

    def test_extreme_quantiles_clamped_to_observed_range(self):
        h = Histogram("t")
        h.observe_many([5.0] * 100)
        assert h.quantile(0.99) == 5.0
        assert h.quantile(0.01) == 5.0


class TestHistogramMerge:
    def test_state_roundtrip_preserves_quantiles(self):
        rng = random.Random(7)
        values = [rng.uniform(0.001, 500.0) for _ in range(5000)]
        h = Histogram("t")
        h.observe_many(values)
        merged = Histogram("t")
        merged.merge_state(h.state())
        for q in (0.1, 0.5, 0.95, 0.99):
            assert merged.quantile(q) == h.quantile(q)
        assert merged.count == h.count
        assert merged.min == h.min
        assert merged.max == h.max

    def test_merge_equals_observing_everything_in_one(self):
        """Two shards merged bucket-by-bucket match a single histogram
        that saw every sample -- the parallel-sweep invariant."""
        rng = random.Random(11)
        a_values = [rng.uniform(0.01, 100.0) for _ in range(2000)]
        b_values = [rng.uniform(0.01, 100.0) for _ in range(2000)]
        combined = Histogram("t")
        combined.observe_many(a_values)
        combined.observe_many(b_values)
        a, b = Histogram("t"), Histogram("t")
        a.observe_many(a_values)
        b.observe_many(b_values)
        merged = Histogram("t")
        merged.merge_state(a.state())
        merged.merge_state(b.state())
        assert merged.count == combined.count
        assert merged.total == pytest.approx(combined.total)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert merged.quantile(q) == combined.quantile(q)

    def test_merge_state_with_json_string_bucket_keys(self):
        """States that crossed a JSON boundary have string bucket
        indices; merge_state must coerce them back."""
        h = Histogram("t")
        h.observe_many([1.0, 2.0, 4.0, 0.0, -1.0])
        state = json.loads(json.dumps(h.state()))
        assert all(isinstance(k, str) for k in state["buckets"])
        merged = Histogram("t")
        merged.merge_state(state)
        assert merged.count == h.count
        assert merged.min == h.min
        assert merged.quantile(0.5) == h.quantile(0.5)

    def test_empty_state_merge_is_identity(self):
        h = Histogram("t")
        h.observe(3.0)
        before = h.state()
        h.merge_state(Histogram("other").state())
        assert h.state() == before

    def test_empty_state_min_max_are_none(self):
        state = Histogram("t").state()
        assert state["count"] == 0
        assert state["min"] is None
        assert state["max"] is None


class TestSnapshotMerge:
    def test_counters_sum_and_histograms_pool(self):
        worker_a = telemetry.Telemetry()
        worker_a.inc("bgp.updates_sent", 5)
        worker_a.observe("phase.probe.wall_s", 1.0)
        worker_b = telemetry.Telemetry()
        worker_b.inc("bgp.updates_sent", 7)
        worker_b.observe("phase.probe.wall_s", 3.0)
        parent = telemetry.Telemetry()
        parent.merge_snapshot(worker_a.mergeable_snapshot())
        parent.merge_snapshot(worker_b.mergeable_snapshot())
        assert parent.counters["bgp.updates_sent"].value == 12
        assert parent.histograms["phase.probe.wall_s"].count == 2
        assert parent.histograms["phase.probe.wall_s"].max == 3.0

    def test_gauges_keep_running_max_and_last_value(self):
        worker_a = telemetry.Telemetry()
        worker_a.set_gauge("engine.queue_depth", 9.0)
        worker_a.set_gauge("engine.queue_depth", 2.0)
        worker_b = telemetry.Telemetry()
        worker_b.set_gauge("engine.queue_depth", 4.0)
        parent = telemetry.Telemetry()
        parent.merge_snapshot(worker_a.mergeable_snapshot())
        parent.merge_snapshot(worker_b.mergeable_snapshot())
        gauge = parent.gauges["engine.queue_depth"]
        assert gauge.value == 4.0  # last merged snapshot's last value
        assert gauge.max_value == 9.0  # running max across workers

    def test_mergeable_snapshot_survives_json(self):
        worker = telemetry.Telemetry()
        worker.inc("cells.done", 3)
        worker.observe("cell.wall_s", 0.5)
        wire = json.loads(json.dumps(worker.mergeable_snapshot()))
        parent = telemetry.Telemetry()
        parent.merge_snapshot(wire)
        assert parent.counters["cells.done"].value == 3
        assert parent.histograms["cell.wall_s"].count == 1

    def test_merge_order_determinism(self):
        """Merging the same snapshots in the same (cell) order always
        yields the same mergeable_snapshot, byte for byte."""
        snapshots = []
        for i in range(3):
            w = telemetry.Telemetry()
            w.inc("n", i + 1)
            w.observe("h", float(i + 1))
            w.set_gauge("g", float(i))
            snapshots.append(w.mergeable_snapshot())
        merged = []
        for _ in range(2):
            parent = telemetry.Telemetry()
            for snap in snapshots:
                parent.merge_snapshot(snap)
            merged.append(json.dumps(parent.mergeable_snapshot(), sort_keys=True))
        assert merged[0] == merged[1]

    def test_null_backend_merge_is_noop(self):
        null = telemetry.registry.NULL
        assert null.mergeable_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        null.merge_snapshot({"counters": {"x": 1}})  # must not raise


class TestCounterGauge:
    def test_counter_inc(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_tracks_high_water(self):
        g = Gauge("depth")
        g.set(3.0)
        g.set(10.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.max_value == 10.0


class TestTraceRecorder:
    def test_unbounded_keeps_everything(self):
        rec = telemetry.TraceRecorder()
        for i in range(100):
            rec.record(telemetry.ProbeSent(t=float(i), target="10.0.0.1", seq=i))
        assert len(rec) == 100
        assert rec.dropped == 0

    def test_ring_buffer_evicts_oldest(self):
        rec = telemetry.TraceRecorder(capacity=3)
        for i in range(10):
            rec.record(telemetry.ProbeSent(t=float(i), target="10.0.0.1", seq=i))
        assert len(rec) == 3
        assert rec.dropped == 7
        assert [e.seq for e in rec.events] == [7, 8, 9]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            telemetry.TraceRecorder(capacity=0)

    def test_events_of_filters_by_type(self):
        rec = telemetry.TraceRecorder()
        rec.record(telemetry.SiteFailed(t=1.0, site="sea1"))
        rec.record(telemetry.ProbeSent(t=2.0, target="10.0.0.1", seq=1))
        assert [e.site for e in rec.events_of(telemetry.SiteFailed)] == ["sea1"]


class TestJsonl:
    def _sample_events(self):
        return [
            telemetry.SiteFailed(t=10.0, site="sea1", silent=True),
            telemetry.BgpUpdateSent(
                t=10.5, sender="a", receiver="b", prefix="10.0.0.0/24",
                update="withdraw",
            ),
            telemetry.RouteSelected(
                t=11.0, node="b", prefix="10.0.0.0/24", via=None, as_path_len=0
            ),
            telemetry.FibInstalled(t=11.5, node="b", prefix="10.0.0.0/24", next_hop=None),
            telemetry.FlapDamped(
                t=12.0, node="c", prefix="10.0.0.0/24", neighbor="a", penalty=2000.0
            ),
            telemetry.ProbeSent(t=13.0, target="1.2.3.4", seq=7),
            telemetry.ProbeReply(t=13.5, target="1.2.3.4", seq=7, site="ams"),
            telemetry.SiteSwitched(t=14.0, target="1.2.3.4", from_site="sea1", to_site="ams"),
            telemetry.PhaseStart(t=0.0, name="p", tags={"site": "sea1"}),
            telemetry.PhaseEnd(t=20.0, name="p", wall_s=0.5, sim_s=20.0, tags={"site": "sea1"}),
        ]

    def test_round_trip_preserves_events(self, tmp_path):
        events = self._sample_events()
        path = tmp_path / "trace.jsonl"
        assert telemetry.write_jsonl(path, events) == len(events)
        assert telemetry.read_jsonl(path) == events

    def test_every_event_kind_is_registered(self):
        for event in self._sample_events():
            assert telemetry.EVENT_TYPES[event.kind] is type(event)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"kind": "site_failed", "t": 1.0, "site": "x", "silent": False})
            + "\n\n"
        )
        events = telemetry.read_jsonl(path)
        assert len(events) == 1
        assert events[0] == telemetry.SiteFailed(t=1.0, site="x")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            telemetry.event_from_dict({"kind": "nope", "t": 0.0})

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            telemetry.read_jsonl(path)

    def test_recorder_write_jsonl(self, tmp_path):
        rec = telemetry.TraceRecorder()
        rec.record(telemetry.SiteFailed(t=1.0, site="x"))
        path = tmp_path / "t.jsonl"
        assert rec.write_jsonl(path) == 1
        assert telemetry.read_jsonl(path) == rec.events


class TestRegistry:
    def test_default_is_null(self):
        assert telemetry.current() is telemetry.NULL
        assert not telemetry.current().enabled

    def test_using_scopes_and_restores(self):
        active = telemetry.Telemetry()
        with telemetry.using(active):
            assert telemetry.current() is active
        assert telemetry.current() is telemetry.NULL

    def test_using_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry.using(telemetry.Telemetry()):
                raise RuntimeError("boom")
        assert telemetry.current() is telemetry.NULL

    def test_install_and_reset(self):
        active = telemetry.Telemetry()
        telemetry.install(active)
        try:
            assert telemetry.current() is active
        finally:
            telemetry.reset()
        assert telemetry.current() is telemetry.NULL

    def test_null_backend_is_inert(self):
        null = telemetry.NULL
        null.inc("x")
        null.observe("x", 1.0)
        null.set_gauge("x", 1.0)
        null.emit(telemetry.SiteFailed(t=0.0, site="s"))
        assert null.now() == 0.0
        with null.phase("p", site="s"):
            pass
        with null.clock_guard():
            pass
        snapshot = null.snapshot()
        assert snapshot["enabled"] is False
        assert snapshot["counters"] == {}

    def test_instruments_created_on_demand_and_cached(self):
        active = telemetry.Telemetry()
        active.inc("a.b", 2)
        active.inc("a.b")
        assert active.counter("a.b").value == 3
        active.observe("h", 1.0)
        assert active.histogram("h").count == 1
        active.set_gauge("g", 4.0)
        assert active.gauge("g").value == 4.0

    def test_phase_records_events_and_wall_histogram(self):
        tracer = telemetry.TraceRecorder()
        active = telemetry.Telemetry(tracer=tracer)
        with active.phase("demo", site="sea1"):
            pass
        starts = tracer.events_of(telemetry.PhaseStart)
        ends = tracer.events_of(telemetry.PhaseEnd)
        assert len(starts) == len(ends) == 1
        assert starts[0].tags == {"site": "sea1"}
        assert ends[0].wall_s >= 0.0
        assert active.histogram("phase.demo.wall_s").count == 1

    def test_clock_binding_and_guard(self):
        active = telemetry.Telemetry()
        assert active.now() == 0.0
        active.bind_clock(lambda: 42.0)
        assert active.now() == 42.0
        with active.clock_guard():
            active.bind_clock(lambda: 7.0)
            assert active.now() == 7.0
        assert active.now() == 42.0

    def test_snapshot_and_render(self):
        active = telemetry.Telemetry(tracer=telemetry.TraceRecorder())
        active.inc("bgp.updates_sent", 3)
        active.observe("engine.callback_wall_us", 12.0)
        active.set_gauge("engine.queue_depth", 5)
        snapshot = active.snapshot()
        assert snapshot["counters"]["bgp.updates_sent"] == 3
        assert snapshot["histograms"]["engine.callback_wall_us"]["count"] == 1
        text = active.render()
        assert "bgp.updates_sent" in text
        assert "engine.queue_depth" in text


class TestSummary:
    def test_summarize_trace_aggregates(self):
        events = [
            telemetry.PhaseStart(t=0.0, name="fail-probe", tags={}),
            telemetry.SiteFailed(t=5.0, site="sea1"),
            telemetry.BgpUpdateSent(
                t=5.1, sender="r1", receiver="r2", prefix="p", update="withdraw"
            ),
            telemetry.BgpUpdateSent(
                t=5.2, sender="r1", receiver="r3", prefix="p", update="announce"
            ),
            telemetry.ProbeSent(t=6.0, target="t", seq=1),
            telemetry.ProbeReply(t=6.5, target="t", seq=1, site="ams"),
            telemetry.SiteSwitched(t=6.5, target="t", from_site="sea1", to_site="ams"),
            telemetry.PhaseEnd(t=90.0, name="fail-probe", wall_s=1.5, sim_s=90.0, tags={}),
        ]
        summary = telemetry.summarize_trace(events)
        assert summary.total_events == 8
        assert summary.t_first == 0.0 and summary.t_last == 90.0
        assert summary.updates_by_sender == {"r1": 2}
        assert summary.updates_by_type == {"withdraw": 1, "announce": 1}
        assert summary.site_failures == [(5.0, "sea1", False)]
        assert summary.probes_sent == 1 and summary.probe_replies == 1
        assert summary.site_switches == 1
        phase = summary.phases["fail-probe"]
        assert phase.runs == 1
        assert phase.wall_s == 1.5
        assert phase.sim_s == 90.0
        text = telemetry.render_summary(summary)
        assert "fail-probe" in text
        assert "sea1" in text

    def test_render_empty_trace(self):
        text = telemetry.render_summary(telemetry.summarize_trace([]))
        assert "0 events" in text


class TestLogs:
    def test_configure_levels(self):
        logger = logs.configure(0)
        assert logger.level == logging.WARNING
        assert logs.configure(1).level == logging.INFO
        assert logs.configure(2).level == logging.DEBUG
        assert logs.configure(9).level == logging.DEBUG

    def test_configure_is_idempotent(self):
        logs.configure(1)
        logger = logs.configure(1)
        ours = [h for h in logger.handlers if getattr(h, "_repro_installed", False)]
        assert len(ours) == 1


class TestFilterEvents:
    def events(self):
        return [
            telemetry.BgpUpdateSent(
                t=1.0, sender="a", receiver="b",
                prefix="184.164.254.0/24", update="announce",
            ),
            telemetry.BgpUpdateSent(
                t=2.0, sender="a", receiver="b",
                prefix="10.0.0.0/8", update="announce",
            ),
            telemetry.SiteFailed(t=3.0, site="sea1"),
            telemetry.ProbeLost(t=4.0, target="10.0.0.1", seq=0, reason="dead-site", site="msn"),
            telemetry.SiteSwitched(t=5.0, target="10.0.0.1", from_site="sea1", to_site="msn"),
        ]

    def test_no_filters_keeps_everything(self):
        events = self.events()
        assert telemetry.filter_events(events) == events

    def test_kind_filter(self):
        kept = telemetry.filter_events(self.events(), kind="bgp_update_sent")
        assert len(kept) == 2
        assert all(e.kind == "bgp_update_sent" for e in kept)

    def test_prefix_filter_drops_prefixless_events(self):
        kept = telemetry.filter_events(self.events(), prefix="184.164.254.0/24")
        assert [e.t for e in kept] == [1.0]

    def test_site_filter_matches_either_shift_end(self):
        kept = telemetry.filter_events(self.events(), site="sea1")
        assert {e.kind for e in kept} == {"site_failed", "site_switched"}
        kept = telemetry.filter_events(self.events(), site="msn")
        assert {e.kind for e in kept} == {"probe_lost", "site_switched"}

    def test_filters_and_together(self):
        kept = telemetry.filter_events(
            self.events(), kind="bgp_update_sent", prefix="10.0.0.0/8"
        )
        assert [e.t for e in kept] == [2.0]
        assert telemetry.filter_events(self.events(), kind="site_failed", site="msn") == []

    def test_summary_counts_new_event_kinds(self):
        summary = telemetry.summarize_trace(self.events() + [
            telemetry.RootCause(t=0.0, cause=1, action="site-fail", target="sea1"),
            telemetry.FaultInjected(t=1.0, fault="link-down", target="a<->b", cause=2),
            telemetry.FaultSkipped(t=2.0, fault="link-down", target="a<->b", reason="already down"),
            telemetry.DnsRecordChanged(t=3.0, site="sea1", action="remove"),
            telemetry.TraceMeta(t=0.0, recorded=100, dropped=9),
        ])
        assert summary.probes_lost == 1
        assert summary.losses_by_reason == {"dead-site": 1}
        assert summary.root_causes == 1
        assert summary.faults_injected == 1
        assert summary.faults_skipped == 1
        assert summary.dns_changes == [(3.0, "remove", "sea1")]
        assert summary.dropped_events == 9
        # the meta line's t=0.0 stays out of the simulated time range
        assert summary.t_first == 0.0 and summary.t_last == 5.0
        text = telemetry.render_summary(summary)
        assert "1 root cause(s)" in text
        assert "ring buffer evicted 9" in text
        assert "lost to dead-site" in text
        assert "DNS record changes" in text
