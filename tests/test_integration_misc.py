"""Cross-module integration tests: hybrid DNS in the authoritative
server, damped failover experiments, and configuration surface checks."""

import pytest

from repro.bgp.damping import DampingConfig
from repro.bgp.session import SessionTiming
from repro.core.experiment import FailoverConfig, FailoverExperiment
from repro.core.techniques import ReactiveAnycast
from repro.dns.authoritative import AuthoritativeServer
from repro.dns.hybrid import HybridMapping
from repro.dns.resolver import RecursiveResolver
from repro.net.addr import IPv4Address

ANYCAST_ADDR = IPv4Address.parse("184.164.244.1")
SEA1_ADDR = IPv4Address.parse("184.164.245.10")


class TestHybridMappingWithAuthoritative:
    def make_server(self) -> AuthoritativeServer:
        """The integration pattern: the anycast pseudo-site gets an
        address entry like any real site."""
        mapping = HybridMapping(
            ANYCAST_ADDR, {"sea1": SEA1_ADDR}, steering={"vip": "sea1"}
        )
        return AuthoritativeServer(
            "cdn.example",
            mapping,
            {HybridMapping.ANYCAST: ANYCAST_ADDR, "sea1": SEA1_ADDR},
            ttl=20.0,
        )

    def test_default_clients_get_anycast(self):
        server = self.make_server()
        assert server.query("cdn.example", "normal", 0.0).address == ANYCAST_ADDR

    def test_steered_clients_get_site_address(self):
        server = self.make_server()
        assert server.query("cdn.example", "vip", 0.0).address == SEA1_ADDR

    def test_through_recursive_resolver(self):
        """Caution the resolver cache implies: hybrid steering is
        per-client at the authoritative, but a shared resolver cache
        serves whatever answer it cached first."""
        server = self.make_server()
        resolver = RecursiveResolver("shared", server)
        first = resolver.resolve("cdn.example", "normal", now=0.0)
        second = resolver.resolve("cdn.example", "vip", now=1.0)
        assert first.address == ANYCAST_ADDR
        assert second.address == ANYCAST_ADDR  # cache hit wins


class TestDampedExperiment:
    def test_failover_experiment_with_damping(self, deployment):
        """The full §5.2 pipeline runs with damping enabled and still
        recovers most targets (sanity for the damping bench)."""
        config = FailoverConfig(
            probe_duration=120.0,
            targets_per_site=8,
            timing=SessionTiming(latency=0.05, jitter=0.3, mrai=5.0, busy_prob=0.2),
            damping=DampingConfig(
                penalty_per_flap=1000.0,
                suppress_threshold=3000.0,
                reuse_threshold=750.0,
                half_life=60.0,
            ),
        )
        experiment = FailoverExperiment(deployment.topology, deployment, config)
        result = experiment.run_site(ReactiveAnycast(), "msn")
        assert result.outcomes
        reconnected = [o for o in result.outcomes if o.reconnection_s is not None]
        assert len(reconnected) >= 0.7 * len(result.outcomes)


class TestConfigSurface:
    def test_failover_config_defaults_match_paper(self):
        config = FailoverConfig()
        assert config.probe_interval == 1.5   # "every ~1.5s"
        assert config.probe_duration == 600.0  # "for ~600s"
        assert config.rtt_limit_ms == 50.0     # §5.1 proximity bound
        assert config.exclude_anycast_routed   # §5.1 criterion
        assert not config.silent_failure
        assert config.damping is None

    def test_config_is_frozen(self):
        config = FailoverConfig()
        with pytest.raises(AttributeError):
            config.probe_interval = 2.0
