"""Repeatability checks the paper itself performs.

§5.4.1: "we evaluate each technique twice using different sets of
targets selected under the same criterion and observe similar
reconnection and failover time."

§5.1: "we also picked an alternate set of targets without this
[not-routed-by-anycast] criterion and found that failover times were
very similar for both datasets."
"""


from repro.bgp.session import SessionTiming
from repro.core.experiment import FailoverConfig, FailoverExperiment, pooled_outcomes
from repro.core.techniques import ReactiveAnycast
from repro.measurement.stats import Cdf

TIMING = SessionTiming(latency=0.05, jitter=0.5, mrai=10.0, busy_prob=0.3, fib_delay=1.0)
SITES = ["msn", "slc"]


def failover_median(deployment, seed: int, exclude_anycast_routed: bool = True) -> float:
    config = FailoverConfig(
        probe_duration=150.0,
        targets_per_site=10,
        timing=TIMING,
        seed=seed,
        exclude_anycast_routed=exclude_anycast_routed,
    )
    experiment = FailoverExperiment(deployment.topology, deployment, config)
    outcomes = pooled_outcomes(experiment.run_all_sites(ReactiveAnycast(), SITES))
    return Cdf.from_optional([o.failover_s for o in outcomes]).median()


class TestRepeatability:
    def test_different_target_sets_similar_failover(self, deployment):
        """Two target draws under the same criterion agree within a few
        seconds at the median (the paper's §5.4.1 check)."""
        first = failover_median(deployment, seed=101)
        second = failover_median(deployment, seed=202)
        assert abs(first - second) < 10.0

    def test_anycast_criterion_does_not_change_failover(self, deployment):
        """Selecting targets with vs without the not-routed-by-anycast
        criterion yields similar failover (the paper's §5.1 check) --
        the criterion matters for *control* measurement, not recovery."""
        filtered = failover_median(deployment, seed=303, exclude_anycast_routed=True)
        unfiltered = failover_median(deployment, seed=303, exclude_anycast_routed=False)
        assert abs(filtered - unfiltered) < 10.0
