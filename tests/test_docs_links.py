"""Documentation hygiene: no dangling links, full subsystem coverage."""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"

_spec = importlib.util.spec_from_file_location(
    "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py"
)
check_doc_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_doc_links)


def doc_pages() -> list[Path]:
    return sorted(DOCS.glob("*.md"))


class TestNoDanglingLinks:
    def test_every_markdown_link_resolves(self):
        broken = []
        for path in check_doc_links.markdown_files(REPO_ROOT):
            for lineno, target in check_doc_links.dangling_links(path, REPO_ROOT):
                broken.append(f"{path.relative_to(REPO_ROOT)}:{lineno} -> {target}")
        assert not broken, "dangling Markdown links:\n" + "\n".join(broken)

    def test_checker_catches_breakage(self, tmp_path):
        (tmp_path / "a.md").write_text("[gone](missing.md)\n")
        found = check_doc_links.dangling_links(tmp_path / "a.md", tmp_path)
        assert found == [(1, "missing.md")]

    def test_checker_ignores_fenced_blocks_and_external(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "[x](https://example.com)\n"
            "[y](#anchor)\n"
            "```\n[z](missing.md)\n```\n"
        )
        assert check_doc_links.dangling_links(tmp_path / "a.md", tmp_path) == []


class TestCoverage:
    def test_index_links_every_docs_page(self):
        index = (DOCS / "index.md").read_text()
        missing = [
            page.name
            for page in doc_pages()
            if page.name != "index.md" and f"({page.name})" not in index
        ]
        assert not missing, f"docs/index.md misses: {missing}"

    def test_readme_links_every_docs_page(self):
        readme = (REPO_ROOT / "README.md").read_text()
        missing = [
            page.name
            for page in doc_pages()
            if f"(docs/{page.name})" not in readme
        ]
        assert not missing, f"README.md misses: {missing}"

    def test_reproducing_reaches_checkpoint_and_faults(self):
        # The historical gap this suite exists to keep closed.
        text = (DOCS / "reproducing.md").read_text()
        assert "checkpoint.md" in text
        assert "faults.md" in text
