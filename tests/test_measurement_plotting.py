"""Tests for the ASCII CDF renderer."""

from repro.measurement.plotting import render_cdfs
from repro.measurement.stats import Cdf


class TestRenderCdfs:
    def test_empty(self):
        assert render_cdfs({}) == "(no data)"
        assert render_cdfs({"x": Cdf([])}) == "(no data)"

    def test_fully_censored(self):
        out = render_cdfs({"x": Cdf([], censored=5)})
        assert out == "(all samples censored)"

    def test_contains_legend_and_axis(self):
        out = render_cdfs({"anycast": Cdf([1.0, 2.0, 5.0])}, x_label="time (s)")
        assert "o anycast" in out
        assert "time (s)" in out

    def test_multiple_series_distinct_glyphs(self):
        out = render_cdfs(
            {"fast": Cdf([1.0, 2.0]), "slow": Cdf([50.0, 100.0])}
        )
        assert "o fast" in out
        assert "x slow" in out
        assert "o" in out and "x" in out

    def test_faster_series_rises_left_of_slower(self):
        out = render_cdfs(
            {"fast": Cdf([1.0] * 10), "slow": Cdf([100.0] * 10)},
            width=40, height=8,
        )
        rows = [line for line in out.splitlines() if "|" in line]
        top_row = rows[0]
        assert "o" in top_row
        assert "x" in top_row
        assert top_row.index("o") < top_row.index("x")

    def test_censored_series_never_reaches_top(self):
        out = render_cdfs({"c": Cdf([1.0], censored=9)}, width=30, height=10)
        rows = [line for line in out.splitlines() if "|" in line]
        # top rows (y near 1.0) must be empty of the glyph
        assert "o" not in rows[0]
        assert "o" not in rows[1]

    def test_log_ticks_present(self):
        out = render_cdfs({"s": Cdf([1.0, 10.0, 100.0])})
        assert "10" in out
        assert "100" in out

    def test_linear_axis(self):
        out = render_cdfs({"s": Cdf([1.0, 2.0, 3.0])}, log_x=False)
        assert "o s" in out

    def test_dimensions(self):
        out = render_cdfs({"s": Cdf([1.0, 5.0])}, width=30, height=6)
        rows = [line for line in out.splitlines() if "|" in line]
        assert len(rows) == 6
        assert all(len(line) <= 36 + 1 for line in rows)
