"""Unit tests for the BGP speaker: import, selection, export, FIB."""

import pytest

from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.network import BgpNetwork
from repro.bgp.policy import Relationship
from repro.net.addr import IPv4Address, IPv4Prefix

from tests.conftest import FAST_TIMING

PFX = IPv4Prefix.parse("184.164.244.0/24")
SUPER = IPv4Prefix.parse("184.164.244.0/23")
ADDR = IPv4Address.parse("184.164.244.10")


def star_network() -> BgpNetwork:
    """hub with customer `cust`, peer `peer`, provider `prov`."""
    net = BgpNetwork(seed=0, default_timing=FAST_TIMING)
    net.add_router("hub", 10)
    net.add_router("cust", 20)
    net.add_router("peer", 30)
    net.add_router("prov", 40)
    net.connect("hub", "cust", Relationship.CUSTOMER)
    net.connect("hub", "peer", Relationship.PEER)
    net.connect("hub", "prov", Relationship.PROVIDER)
    return net


class TestOrigination:
    def test_originate_installs_local_fib(self):
        net = star_network()
        net.announce("hub", PFX)
        net.converge()
        assert net.next_hop("hub", ADDR) == "hub"

    def test_originate_reaches_all_neighbor_classes(self):
        net = star_network()
        net.announce("hub", PFX)
        net.converge()
        for node in ("cust", "peer", "prov"):
            route = net.router(node).best_route(PFX)
            assert route is not None
            assert route.as_path == (10,)

    def test_withdraw_origin(self):
        net = star_network()
        net.announce("hub", PFX)
        net.converge()
        assert net.withdraw("hub", PFX)
        net.converge()
        for node in net.nodes():
            assert net.router(node).best_route(PFX) is None
        assert net.next_hop("hub", ADDR) is None

    def test_withdraw_unannounced_returns_false(self):
        net = star_network()
        assert not net.withdraw("hub", PFX)

    def test_reannounce_after_withdraw(self):
        net = star_network()
        net.announce("hub", PFX)
        net.converge()
        net.withdraw("hub", PFX)
        net.converge()
        net.announce("hub", PFX)
        net.converge()
        assert net.router("cust").best_route(PFX) is not None

    def test_originate_with_prepending(self):
        net = star_network()
        net.announce("hub", PFX, prepend=3)
        net.converge()
        assert net.router("cust").best_route(PFX).as_path == (10, 10, 10, 10)

    def test_originate_scoped_to_neighbors(self):
        """The paper's refinement: announce (prepended) routes only to
        selected neighbors."""
        net = star_network()
        net.announce("hub", PFX, neighbors=frozenset({"cust"}))
        net.converge()
        assert net.router("cust").best_route(PFX) is not None
        assert net.router("peer").best_route(PFX) is None
        assert net.router("prov").best_route(PFX) is None

    def test_originated_prefixes_listing(self):
        net = star_network()
        net.announce("hub", PFX)
        net.announce("hub", SUPER)
        assert set(net.router("hub").originated_prefixes()) == {PFX, SUPER}


class TestValleyFreeExport:
    def build_chain(self) -> BgpNetwork:
        """origin <- transit (origin's provider); transit has peer and
        its own provider."""
        net = BgpNetwork(seed=0, default_timing=FAST_TIMING)
        for name, asn in (("origin", 1), ("transit", 2), ("peer", 3), ("top", 4)):
            net.add_router(name, asn)
        net.add_provider("origin", "transit")
        net.add_peering("transit", "peer")
        net.add_provider("transit", "top")
        return net

    def test_customer_route_exported_to_peer_and_provider(self):
        net = self.build_chain()
        net.announce("origin", PFX)
        net.converge()
        assert net.router("peer").best_route(PFX) is not None
        assert net.router("top").best_route(PFX) is not None

    def test_peer_route_not_exported_to_provider(self):
        net = self.build_chain()
        net.announce("peer", PFX)
        net.converge()
        # transit has the peer route, but must not give it to top.
        assert net.router("transit").best_route(PFX) is not None
        assert net.router("top").best_route(PFX) is None

    def test_provider_route_not_exported_to_peer(self):
        net = self.build_chain()
        net.announce("top", PFX)
        net.converge()
        assert net.router("transit").best_route(PFX) is not None
        assert net.router("peer").best_route(PFX) is None

    def test_provider_route_exported_to_customer(self):
        net = self.build_chain()
        net.announce("top", PFX)
        net.converge()
        assert net.router("origin").best_route(PFX) is not None


class TestLoopPrevention:
    def test_as_path_loop_rejected(self):
        net = star_network()
        router = net.router("hub")
        looped = Announcement(sender="cust", prefix=PFX, as_path=(20, 10, 5), origin_node="x")
        router.receive(looped)
        assert router.best_route(PFX) is None

    def test_looped_announcement_acts_as_implicit_withdraw(self):
        net = star_network()
        router = net.router("hub")
        router.receive(Announcement(sender="cust", prefix=PFX, as_path=(20, 5), origin_node="x"))
        assert router.best_route(PFX) is not None
        router.receive(Announcement(sender="cust", prefix=PFX, as_path=(20, 10, 5), origin_node="x"))
        assert router.best_route(PFX) is None

    def test_unknown_neighbor_rejected(self):
        net = star_network()
        with pytest.raises(ValueError):
            net.router("hub").receive(
                Announcement(sender="stranger", prefix=PFX, as_path=(9,), origin_node="x")
            )

    def test_anycast_sites_do_not_adopt_each_other(self):
        """Two routers sharing an ASN (CDN sites) reject each other's
        announcements via the AS-path loop check."""
        net = BgpNetwork(seed=0, default_timing=FAST_TIMING)
        net.add_router("site-a", 47065)
        net.add_router("site-b", 47065)
        net.add_router("mid", 1)
        net.add_provider("site-a", "mid")
        net.add_provider("site-b", "mid")
        net.announce("site-a", PFX)
        net.converge()
        assert net.router("site-b").best_route(PFX) is None


class TestBestPathMaintenance:
    def test_fallback_to_worse_route_on_withdraw(self):
        net = star_network()
        hub = net.router("hub")
        hub.receive(Announcement(sender="cust", prefix=PFX, as_path=(20, 5), origin_node="x"))
        hub.receive(Announcement(sender="prov", prefix=PFX, as_path=(40, 5), origin_node="x"))
        assert hub.best_route(PFX).learned_from == "cust"
        hub.receive(Withdrawal(sender="cust", prefix=PFX))
        assert hub.best_route(PFX).learned_from == "prov"

    def test_fib_follows_best(self):
        net = star_network()
        hub = net.router("hub")
        hub.receive(Announcement(sender="prov", prefix=PFX, as_path=(40, 5), origin_node="x"))
        net.converge()
        assert net.next_hop("hub", ADDR) == "prov"
        hub.receive(Announcement(sender="cust", prefix=PFX, as_path=(20, 5), origin_node="x"))
        net.converge()
        assert net.next_hop("hub", ADDR) == "cust"

    def test_longest_prefix_match_in_fib(self):
        """Superprefix + specific: the /24 wins while present, the /23
        takes over after (the §3 mechanism)."""
        net = star_network()
        net.announce("hub", SUPER)
        net.announce("cust", PFX)
        net.converge()
        assert net.next_hop("hub", ADDR) == "cust"
        net.withdraw("cust", PFX)
        net.converge()
        assert net.next_hop("hub", ADDR) == "hub"

    def test_new_session_receives_existing_table(self):
        net = star_network()
        net.announce("hub", PFX)
        net.converge()
        net.add_router("late", 50)
        net.connect("hub", "late", Relationship.CUSTOMER)
        net.converge()
        assert net.router("late").best_route(PFX) is not None
