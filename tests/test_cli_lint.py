"""CLI tests for ``repro lint`` and the experiment pre-flight gate."""

import argparse
import json

import pytest

from repro.cli import build_parser, main
from repro.cli.common import run_preflight
from repro.topology.generator import TopologyParams
from repro.topology.testbed import build_deployment


@pytest.fixture
def hazard_file(tmp_path):
    path = tmp_path / "hazard.py"
    path.write_text(
        "import random, time\n"
        "rng = random.Random()\n"
        "seeded = random.Random(hash('x'))\n"
        "jitter = random.random()\n"
        "start = time.time()\n"
        "for item in set([1, 2]):\n"
        "    pass\n"
        "def f(xs=[]):\n"
        "    return xs\n"
        "same = event.t == other.t\n"
    )
    return path


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import random\nrng = random.Random(42)\n")
        assert main(["lint", str(clean)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_every_hazard_class_is_coded(self, hazard_file, capsys):
        assert main(["lint", str(hazard_file)]) == 1
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "DET004", "DET005",
                     "DET006", "DET007"):
            assert code in out, f"{code} not reported"

    def test_json_format(self, hazard_file, capsys):
        assert main(["lint", str(hazard_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] >= 7

    def test_select(self, hazard_file, capsys):
        assert main(["lint", str(hazard_file), "--select", "DET001"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "DET002" not in out

    def test_ignore_by_name(self, hazard_file, capsys):
        code = main(["lint", str(hazard_file), "--ignore",
                     "unseeded-random,module-random,hash-seed,wall-clock,"
                     "set-iteration,float-time-eq,mutable-default"])
        assert code == 0

    def test_unknown_rule_is_usage_error(self, hazard_file):
        assert main(["lint", str(hazard_file), "--select", "DET999"]) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        assert main(["lint", str(tmp_path / "absent.py")]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "unseeded-random" in out

    def test_lint_src_repro_is_clean(self, capsys):
        """The acceptance gate: the shipped tree lints clean via the CLI."""
        assert main(["lint", "src/repro"]) == 0

    def test_metrics_flag_reports_finding_counters(self, hazard_file, capsys):
        assert main(["lint", str(hazard_file), "--metrics"]) == 1
        out = capsys.readouterr().out
        assert "analysis.lint.findings" in out


class TestPreflightGate:
    def test_scenario_refuses_unknown_event_site(self, capsys):
        code = main(["scenario", "-e", "fail:lhr@60"])
        assert code == 2
        err = capsys.readouterr().err
        assert "PRE101" in err
        assert "--no-preflight" in err

    def test_scenario_refuses_backwards_timeline(self, capsys):
        code = main(["scenario", "-e", "recover:sea1@10"])
        assert code == 2
        assert "PRE105" in capsys.readouterr().err

    def test_commands_expose_no_preflight_flag(self):
        parser = build_parser()
        for command in ("failover", "compare", "drill", "scenario"):
            args = parser.parse_args([command, "--no-preflight"])
            assert args.no_preflight

    def test_override_lets_errors_through(self, capsys):
        deployment = build_deployment(params=TopologyParams(seed=42))
        args = argparse.Namespace(no_preflight=True)
        ok = run_preflight(
            args, deployment, events=[("fail", "lhr", 60.0)], duration=300.0
        )
        assert ok
        assert "overridden by --no-preflight" in capsys.readouterr().err

    def test_gate_blocks_without_override(self, capsys):
        deployment = build_deployment(params=TopologyParams(seed=42))
        args = argparse.Namespace(no_preflight=False)
        ok = run_preflight(
            args, deployment, events=[("fail", "lhr", 60.0)], duration=300.0
        )
        assert not ok
        assert "refusing to run" in capsys.readouterr().err

    def test_warnings_do_not_block(self, capsys):
        deployment = build_deployment(params=TopologyParams(seed=42))
        args = argparse.Namespace(no_preflight=False)
        ok = run_preflight(
            args, deployment,
            events=[("fail", "sea1", 500.0)],  # after the end: warning only
            duration=300.0,
        )
        assert ok
        assert "PRE104" in capsys.readouterr().err
