"""End-to-end telemetry: a small failover run must leave a causally
ordered trace (SiteFailed -> BgpUpdateSent -> ProbeReply) and populated
counters behind."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.core.experiment import FailoverConfig, FailoverExperiment
from repro.core.techniques import technique_by_name
from repro.topology.generator import TopologyParams
from repro.topology.testbed import build_deployment

SMALL = FailoverConfig(probe_duration=60.0, targets_per_site=5, seed=42)


@pytest.fixture(scope="module")
def traced_run():
    deployment = build_deployment(params=TopologyParams(seed=42))
    experiment = FailoverExperiment(deployment.topology, deployment, SMALL)
    tracer = telemetry.TraceRecorder()
    active = telemetry.Telemetry(tracer=tracer)
    with telemetry.using(active):
        result = experiment.run_site(technique_by_name("anycast"), "msn")
    return active, tracer, result


def test_failure_withdrawal_reply_causal_order(traced_run):
    _, tracer, _ = traced_run
    events = tracer.events

    failed_idx = next(
        i for i, e in enumerate(events) if isinstance(e, telemetry.SiteFailed)
    )
    withdraw_idx = next(
        i for i, e in enumerate(events)
        if isinstance(e, telemetry.BgpUpdateSent) and e.update == "withdraw"
        and i > failed_idx
    )
    reply_idx = next(
        i for i, e in enumerate(events)
        if isinstance(e, telemetry.ProbeReply) and i > withdraw_idx
    )
    assert failed_idx < withdraw_idx < reply_idx

    failed = events[failed_idx]
    assert failed.site == "msn"
    # Simulated time must be non-decreasing along the causal chain.
    assert failed.t <= events[withdraw_idx].t <= events[reply_idx].t


def test_counters_populated(traced_run):
    active, _, result = traced_run
    snapshot = active.snapshot()
    counters = snapshot["counters"]
    assert counters["bgp.updates_sent"] > 0
    assert counters["bgp.updates_received"] > 0
    assert counters["bgp.fib_installs"] > 0
    assert counters["controller.site_failures"] == 1
    assert counters["probe.sent"] > 0
    assert counters["probe.replies"] > 0
    assert counters["engine.events_processed"] > 0
    # Every probe is accounted for: replies + losses == sent.
    assert counters["probe.replies"] + counters.get("probe.replies_lost", 0) == counters["probe.sent"]
    assert result.outcomes  # the run itself produced measurements


def test_phases_cover_the_protocol(traced_run):
    _, tracer, _ = traced_run
    starts = {e.name for e in tracer.events_of(telemetry.PhaseStart)}
    ends = {e.name: e for e in tracer.events_of(telemetry.PhaseEnd)}
    expected = {"deploy-converge", "select-targets", "fail-probe", "analyze"}
    assert expected <= starts
    assert expected <= set(ends)
    for name in expected:
        assert ends[name].tags == {"technique": "anycast", "site": "msn"}
        assert ends[name].wall_s >= 0.0
    # The probing phase spans the configured simulated window.
    assert ends["fail-probe"].sim_s >= SMALL.probe_duration


def test_trace_round_trips_through_jsonl(traced_run, tmp_path):
    _, tracer, _ = traced_run
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(path)
    assert telemetry.read_jsonl(path) == tracer.events
    summary = telemetry.summarize_trace(tracer.events)
    assert summary.total_events == len(tracer.events)
    assert summary.site_failures[0][1] == "msn"
    assert summary.updates_by_type.get("withdraw", 0) > 0


def test_disabled_runs_leave_no_trace(traced_run):
    # Outside `using`, the module-level NULL backend is active again and
    # instrumented components stay inert.
    assert telemetry.current() is telemetry.NULL
    deployment = build_deployment(params=TopologyParams(seed=42))
    experiment = FailoverExperiment(deployment.topology, deployment, SMALL)
    result = experiment.run_site(technique_by_name("anycast"), "msn")
    assert result.outcomes
