"""The workload engine end to end: loss during convergence, determinism
across repeats / checkpoint forks / worker counts, and the ledger fold."""

from __future__ import annotations

import pytest

from repro.bgp.session import SessionTiming
from repro.core.experiment import FailoverConfig, FailoverExperiment
from repro.core.scenarios import ScenarioRunner
from repro.core.techniques import ReactiveAnycast, technique_by_name
from repro.obs import LEDGER_SCHEMA, AvailabilityLedger, render_report
from repro.parallel import matrix, run_sweep
from repro.telemetry import Telemetry, TraceRecorder, using
from repro.workload import (
    WorkloadAccount,
    builtin_profile,
    merge_accounts,
    render_account,
)

TEST_TIMING = SessionTiming(latency=0.05, jitter=0.5, mrai=10.0, busy_prob=0.3, fib_delay=1.0)

PROFILE = builtin_profile("flash-crowd")


def make_experiment(deployment, **overrides):
    config = FailoverConfig(
        probe_duration=overrides.pop("probe_duration", 90.0),
        targets_per_site=8,
        timing=TEST_TIMING,
        seed=17,
        workload=overrides.pop("workload", PROFILE),
        **overrides,
    )
    return FailoverExperiment(
        deployment.topology, deployment, config, use_checkpoint=True
    )


class TestFailoverIntegration:
    def test_convergence_loses_requests(self, deployment):
        result = make_experiment(deployment).run_site(ReactiveAnycast(), "msn")
        account = result.workload
        assert account is not None
        assert account.technique == "reactive-anycast"
        assert account.site == "msn"
        assert account.offered > 1000
        # The failure window must cost something...
        assert account.lost > 0
        # ... but the technique recovers: most requests are served.
        assert account.served > account.lost
        assert account.user_minutes_lost == pytest.approx(
            account.lost * PROFILE.think_time_s / 60.0
        )
        assert sum(account.served_by_site.values()) == account.served
        # The stream starts after the failure: the dead site never serves.
        assert "msn" not in account.served_by_site

    def test_no_workload_config_is_none(self, deployment):
        experiment = make_experiment(deployment, workload=None, probe_duration=40.0)
        result = experiment.run_site(ReactiveAnycast(), "msn")
        assert result.workload is None

    def test_checkpoint_fork_byte_identical(self, deployment):
        """Two forks of the same baseline produce identical accounts:
        workload state is outside the network snapshot by design."""
        experiment = make_experiment(deployment)
        first = experiment.run_site(ReactiveAnycast(), "msn", checkpoint=True)
        second = experiment.run_site(ReactiveAnycast(), "msn", checkpoint=True)
        assert first.workload.to_dict() == second.workload.to_dict()

    def test_serial_vs_two_workers_byte_identical(self, deployment):
        experiment = make_experiment(deployment, probe_duration=60.0)
        cells = matrix([ReactiveAnycast()], ["msn", "sea1"])
        serial = run_sweep(experiment, cells, workers=1)
        fresh = make_experiment(deployment, probe_duration=60.0)
        parallel = run_sweep(fresh, cells, workers=2)
        assert serial.ok and parallel.ok
        for a, b in zip(serial.site_results(), parallel.site_results()):
            assert a.workload.to_dict() == b.workload.to_dict()


class TestScenarioIntegration:
    def test_scenario_accounts_and_recovers(self, deployment):
        runner = ScenarioRunner(
            topology=deployment.topology,
            deployment=deployment,
            technique=technique_by_name("reactive-anycast"),
            specific_site="sea1",
            duration_s=120.0,
            timing=TEST_TIMING,
            seed=9,
            workload=PROFILE,
        )
        runner.fail(30.0, "sea1")
        report = runner.run()
        account = report.workload
        assert account is not None and account.offered > 0
        assert account.lost > 0


class TestLedgerFold:
    def test_workload_samples_fold_into_ledger(self, deployment):
        tracer = TraceRecorder()
        with using(Telemetry(tracer=tracer)):
            make_experiment(deployment, probe_duration=60.0).run_site(
                ReactiveAnycast(), "msn"
            )
        ledger = AvailabilityLedger.from_events(tracer.events)
        assert ("reactive-anycast", "msn") in ledger.workload
        payload = ledger.to_dict()
        assert payload["schema"] == LEDGER_SCHEMA
        workload = payload["workload"]["reactive-anycast"]
        assert workload["offered"] > 0
        assert workload["user_minutes_lost"] == pytest.approx(
            workload["user_seconds_lost"] / 60.0
        )
        assert "msn" in workload["sites"]
        text = render_report(ledger)
        assert "workload (requests):" in text
        assert "user-min lost" in text

    def test_ledger_without_workload_unchanged(self):
        payload = AvailabilityLedger.from_events([]).to_dict()
        assert "workload" not in payload
        assert "workload" not in render_report(AvailabilityLedger())


class TestAccounts:
    def test_merge_sums_and_pools(self):
        a = WorkloadAccount(
            technique="anycast", site="sea1", offered=10, served=8,
            lost_blackhole=2, user_seconds_lost=120.0,
            served_by_site={"msn": 8},
        )
        b = WorkloadAccount(
            technique="anycast", site="ams", offered=5, served=5,
            served_by_site={"msn": 2, "ath": 3},
        )
        merged = merge_accounts([a, b])
        assert merged.technique == "anycast"
        assert merged.site == "*"
        assert merged.offered == 15
        assert merged.served == 13
        assert merged.lost == 2
        assert merged.user_minutes_lost == pytest.approx(2.0)
        assert merged.served_by_site == {"msn": 10, "ath": 3}

    def test_merge_mixed_techniques_pools(self):
        merged = merge_accounts([
            WorkloadAccount(technique="a"), WorkloadAccount(technique="b"),
        ])
        assert merged.technique == "pooled"

    def test_render_is_greppable(self):
        account = WorkloadAccount(
            offered=100, served=90, lost_blackhole=10, user_seconds_lost=600.0
        )
        line = render_account(account)
        assert line.startswith("workload: 100 requests offered")
        assert "10 lost (10.0%)" in line
        assert "10.0 user-minutes lost" in line

    def test_loss_frac_empty_account(self):
        assert WorkloadAccount().loss_frac == 0.0
