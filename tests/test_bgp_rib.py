"""Unit tests for Adj-RIB-In / Loc-RIB and the per-prefix decision."""

from repro.bgp.policy import LOCAL_ORIGIN_PREF
from repro.bgp.rib import AdjRibIn, LocRib, decide
from repro.bgp.route import Route
from repro.net.addr import IPv4Prefix

PFX = IPv4Prefix.parse("184.164.244.0/24")
PFX2 = IPv4Prefix.parse("184.164.245.0/24")


def route(neighbor: str, pref: int = 200, path=(1,)) -> Route:
    return Route(PFX, tuple(path), neighbor, pref, origin_node="o")


class TestAdjRibIn:
    def test_update_and_candidates(self):
        rib = AdjRibIn()
        rib.update(PFX, "a", route("a"))
        rib.update(PFX, "b", route("b"))
        assert {r.learned_from for r in rib.candidates(PFX)} == {"a", "b"}

    def test_update_replaces_previous_advertisement(self):
        rib = AdjRibIn()
        rib.update(PFX, "a", route("a", path=(1,)))
        rib.update(PFX, "a", route("a", path=(1, 2)))
        assert len(rib.candidates(PFX)) == 1
        assert rib.route_from(PFX, "a").as_path == (1, 2)

    def test_withdraw(self):
        rib = AdjRibIn()
        rib.update(PFX, "a", route("a"))
        assert rib.withdraw(PFX, "a")
        assert rib.candidates(PFX) == []
        assert not rib.withdraw(PFX, "a")

    def test_withdraw_unknown_prefix(self):
        assert not AdjRibIn().withdraw(PFX, "a")

    def test_prefixes(self):
        rib = AdjRibIn()
        rib.update(PFX, "a", route("a"))
        assert rib.prefixes() == [PFX]
        rib.withdraw(PFX, "a")
        assert rib.prefixes() == []

    def test_drop_neighbor(self):
        rib = AdjRibIn()
        rib.update(PFX, "a", route("a"))
        rib.update(PFX2, "a", Route(PFX2, (1,), "a", 200, "o"))
        rib.update(PFX, "b", route("b"))
        affected = rib.drop_neighbor("a")
        assert set(affected) == {PFX, PFX2}
        assert {r.learned_from for r in rib.candidates(PFX)} == {"b"}

    def test_stale_routes_remain_until_withdrawn(self):
        """The invariant path hunting depends on: nothing expires
        implicitly; only explicit withdrawals remove alternates."""
        rib = AdjRibIn()
        rib.update(PFX, "a", route("a"))
        rib.update(PFX, "b", route("b"))
        rib.withdraw(PFX, "a")
        assert [r.learned_from for r in rib.candidates(PFX)] == ["b"]


class TestLocRib:
    def test_set_get(self):
        loc = LocRib()
        r = route("a")
        loc.set(PFX, r)
        assert loc.get(PFX) == r
        assert len(loc) == 1

    def test_set_none_removes(self):
        loc = LocRib()
        loc.set(PFX, route("a"))
        loc.set(PFX, None)
        assert loc.get(PFX) is None
        assert len(loc) == 0

    def test_items(self):
        loc = LocRib()
        r = route("a")
        loc.set(PFX, r)
        assert loc.items() == [(PFX, r)]


class TestDecide:
    def test_local_route_always_wins(self):
        rib = AdjRibIn()
        rib.update(PFX, "a", route("a", pref=300))
        local = Route(PFX, (), None, LOCAL_ORIGIN_PREF, "self")
        assert decide(PFX, rib, local) == local

    def test_without_local_route(self):
        rib = AdjRibIn()
        rib.update(PFX, "a", route("a", pref=100))
        rib.update(PFX, "b", route("b", pref=300))
        assert decide(PFX, rib, None).learned_from == "b"

    def test_empty(self):
        assert decide(PFX, AdjRibIn(), None) is None
