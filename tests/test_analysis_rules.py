"""Per-rule tests for the determinism linter.

Every rule gets a positive case (the hazard fires), a negative case
(the safe idiom stays silent), and a noqa suppression case.
"""

import pytest

from repro.analysis import LintEngine

ENGINE = LintEngine()


def codes(source: str) -> list[str]:
    return [finding.code for finding in ENGINE.lint_source(source)]


class TestUnseededRandom:
    def test_positive(self):
        assert codes("import random\nrng = random.Random()\n") == ["DET001"]

    def test_bare_name(self):
        assert codes("from random import Random\nrng = Random()\n") == ["DET001"]

    def test_system_random(self):
        assert codes("import random\nrng = random.SystemRandom()\n") == ["DET001"]

    def test_negative_seeded(self):
        assert codes("import random\nrng = random.Random(42)\n") == []

    def test_negative_keyword_seed(self):
        assert codes("import random\nrng = random.Random(x=42)\n") == []

    def test_noqa(self):
        source = "import random\nrng = random.Random()  # repro: noqa[DET001]\n"
        assert codes(source) == []


class TestModuleLevelRandom:
    @pytest.mark.parametrize("call", [
        "random.random()",
        "random.randint(0, 10)",
        "random.choice([1, 2])",
        "random.shuffle(items)",
        "random.seed(42)",
        "random.lognormvariate(0.0, 1.2)",
    ])
    def test_positive(self, call):
        assert codes(f"import random\nvalue = {call}\n") == ["DET002"]

    def test_negative_instance_method(self):
        source = "import random\nrng = random.Random(1)\nvalue = rng.random()\n"
        assert codes(source) == []

    def test_negative_other_module(self):
        assert codes("value = numpy.random(3)\n") == []

    def test_noqa(self):
        source = "import random\nvalue = random.random()  # repro: noqa[DET002]\n"
        assert codes(source) == []


class TestHashDerivedSeed:
    def test_positive_random_ctor(self):
        assert codes("rng = random.Random(hash(client_id))\n") == ["DET003"]

    def test_positive_masked(self):
        assert codes("rng = random.Random(hash(x) & 0xFFFFFFFF)\n") == ["DET003"]

    def test_positive_seed_method(self):
        assert codes("rng.seed(hash(name))\n") == ["DET003"]

    def test_negative_crc32(self):
        assert codes("rng = random.Random(zlib.crc32(b'x'))\n") == []

    def test_negative_hash_elsewhere(self):
        assert codes("bucket = hash(key) % n\n") == []

    def test_noqa(self):
        assert codes("rng.seed(hash(n))  # repro: noqa[DET003]\n") == []


class TestWallClockRead:
    @pytest.mark.parametrize("call", [
        "time.time()",
        "time.perf_counter()",
        "time.monotonic()",
        "datetime.now()",
        "datetime.datetime.utcnow()",
        "datetime.date.today()",
    ])
    def test_positive(self, call):
        assert codes(f"value = {call}\n") == ["DET004"]

    def test_negative_engine_clock(self):
        assert codes("value = engine.now\n") == []

    def test_negative_sleep(self):
        assert codes("time.sleep(1)\n") == []

    def test_telemetry_path_exempt(self):
        findings = ENGINE.lint_source(
            "import time\nstart = time.time()\n",
            path="src/repro/telemetry/metrics.py",
        )
        assert findings == []

    def test_non_telemetry_path_not_exempt(self):
        findings = ENGINE.lint_source(
            "import time\nstart = time.time()\n",
            path="src/repro/bgp/engine.py",
        )
        assert [f.code for f in findings] == ["DET004"]

    def test_noqa(self):
        assert codes("t0 = time.time()  # repro: noqa[DET004]\n") == []


class TestSetIterationOrder:
    def test_positive_set_call(self):
        assert codes("for x in set(items):\n    use(x)\n") == ["DET005"]

    def test_positive_set_literal(self):
        assert codes("for x in {1, 2, 3}:\n    use(x)\n") == ["DET005"]

    def test_positive_comprehension(self):
        assert codes("out = [f(x) for x in frozenset(items)]\n") == ["DET005"]

    def test_negative_sorted(self):
        assert codes("for x in sorted(set(items)):\n    use(x)\n") == []

    def test_negative_list(self):
        assert codes("for x in [1, 2, 3]:\n    use(x)\n") == []

    def test_negative_dict_literal(self):
        # dicts preserve insertion order; {} here is a Dict node, not a Set
        assert codes("for x in {'a': 1}:\n    use(x)\n") == []

    def test_noqa(self):
        assert codes("for x in set(items):  # repro: noqa[DET005]\n    use(x)\n") == []


class TestFloatTimeEquality:
    def test_positive_attribute(self):
        assert codes("if event.t == failure.at:\n    pass\n") == ["DET006"]

    def test_positive_suffixed_name(self):
        assert codes("if sent_at == expires_at:\n    pass\n") == ["DET006"]

    def test_positive_not_equal(self):
        assert codes("if probe.time != reply.time:\n    pass\n") == ["DET006"]

    def test_negative_ordering(self):
        assert codes("if probe.sent_at <= now:\n    pass\n") == []

    def test_negative_literal_comparison(self):
        # comparisons against literals are sentinel checks, not time math
        assert codes("if at == 0:\n    pass\n") == []

    def test_negative_generic_t_name(self):
        # a bare `t` is any old loop variable, not necessarily a timestamp
        assert codes("ok = [t for t in transits if t == primary]\n") == []

    def test_is_warning(self):
        findings = ENGINE.lint_source("if event.t == other.t:\n    pass\n")
        assert [f.severity.value for f in findings] == ["warning"]

    def test_noqa(self):
        assert codes("same = a.t == b.t  # repro: noqa[DET006]\n") == []


class TestMutableDefaultArgument:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "list()", "dict()"])
    def test_positive(self, default):
        assert codes(f"def f(x={default}):\n    return x\n") == ["DET007"]

    def test_positive_kwonly(self):
        assert codes("def f(*, x=[]):\n    return x\n") == ["DET007"]

    def test_negative_none_default(self):
        assert codes("def f(x=None):\n    return x or []\n") == []

    def test_negative_tuple_default(self):
        assert codes("def f(x=()):\n    return x\n") == []

    def test_noqa(self):
        assert codes("def f(x=[]):  # repro: noqa[DET007]\n    return x\n") == []
