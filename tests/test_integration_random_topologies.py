"""Property tests on randomly generated topologies.

These are the strongest correctness checks in the suite: for arbitrary
seeded Internet-like topologies, the dynamic BGP simulator must
converge, produce loop-free forwarding, respect valley-free export, and
agree with the independent static solver.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bgp.policy import LOCAL_PREF, Relationship
from repro.net.addr import IPv4Prefix
from repro.topology.generator import TopologyParams, generate_topology
from repro.topology.relationships import AsClass
from repro.topology.static_routes import CUSTOMER, PEER, PROVIDER, StaticRoutes

from tests.conftest import FAST_TIMING

PFX = IPv4Prefix.parse("184.164.244.0/24")

params_strategy = st.builds(
    TopologyParams,
    seed=st.integers(min_value=0, max_value=10_000),
    n_tier1=st.integers(min_value=3, max_value=6),
    n_transit_per_region=st.integers(min_value=1, max_value=3),
    n_regional_per_region=st.integers(min_value=0, max_value=2),
    n_eyeball_per_region=st.integers(min_value=2, max_value=6),
    n_university_per_region=st.integers(min_value=1, max_value=3),
    n_re_backbone=st.integers(min_value=2, max_value=3),
    n_hypergiant=st.integers(min_value=1, max_value=2),
)

PREF_OF_CLASS = {
    CUSTOMER: LOCAL_PREF[Relationship.CUSTOMER],
    PEER: LOCAL_PREF[Relationship.PEER],
    PROVIDER: LOCAL_PREF[Relationship.PROVIDER],
}

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRandomTopologyProperties:
    @SETTINGS
    @given(params_strategy)
    def test_convergence_and_loop_freedom(self, params):
        """Announcing a prefix anywhere converges to loop-free
        forwarding: following FIB next hops always terminates."""
        topology = generate_topology(params)
        network = topology.build_network(seed=params.seed, timing=FAST_TIMING)
        origin = topology.web_client_ases()[0].node_id
        network.announce(origin, PFX)
        network.converge(max_seconds=3600.0)
        assert network.engine.pending == 0
        address = PFX.address(1)
        for node in network.nodes():
            hops = 0
            current = node
            while True:
                next_hop = network.next_hop(current, address)
                if next_hop is None or next_hop == current:
                    break
                current = next_hop
                hops += 1
                assert hops <= 64, f"forwarding loop from {node}"

    @SETTINGS
    @given(params_strategy)
    def test_dynamic_matches_static_solver(self, params):
        """Converged route class and AS-path length equal the static
        valley-free solution at every AS."""
        topology = generate_topology(params)
        origin = topology.web_client_ases()[-1].node_id
        static = StaticRoutes(topology, origin)
        network = topology.build_network(seed=params.seed + 1, timing=FAST_TIMING)
        network.announce(origin, PFX)
        network.converge()
        for node in topology.ases:
            if node == origin:
                continue
            dynamic = network.router(node).best_route(PFX)
            expected = static.route(node)
            if expected is None:
                assert dynamic is None, node
                continue
            assert dynamic is not None, node
            assert dynamic.local_pref == PREF_OF_CLASS[expected.pref_class], node
            assert len(dynamic.as_path) == expected.hops, node

    @SETTINGS
    @given(params_strategy)
    def test_withdrawal_always_cleans_up(self, params):
        """After withdrawing the only origin, no AS retains a route --
        path hunting always terminates with full removal."""
        topology = generate_topology(params)
        network = topology.build_network(seed=params.seed + 2, timing=FAST_TIMING)
        origin = topology.by_class(AsClass.HYPERGIANT)[0].node_id
        network.announce(origin, PFX)
        network.converge()
        network.withdraw(origin, PFX)
        network.converge()
        for node in network.nodes():
            assert network.router(node).best_route(PFX) is None, node

    @SETTINGS
    @given(params_strategy)
    def test_anycast_catchment_partition(self, params):
        """With several origins, every AS with a route maps to exactly
        one origin, and all origins that can win somewhere do."""
        topology = generate_topology(params)
        network = topology.build_network(seed=params.seed + 3, timing=FAST_TIMING)
        clients = topology.web_client_ases()
        origins = [clients[0].node_id, clients[len(clients) // 2].node_id]
        for origin in origins:
            network.announce(origin, PFX)
        network.converge()
        for node in network.nodes():
            route = network.router(node).best_route(PFX)
            assert route is not None, f"{node} lost reachability under anycast"
            assert route.origin_node in origins
