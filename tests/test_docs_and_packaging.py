"""Documentation and packaging hygiene checks.

A reproduction repo lives or dies by its docs matching the code: these
tests keep README/DESIGN/EXPERIMENTS references, the public API surface,
and the packaging metadata honest.
"""

import importlib
import pathlib
import re

import pytest

import repro

ROOT = pathlib.Path(repro.__file__).resolve().parents[2]


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.net", "repro.bgp", "repro.topology", "repro.dns",
            "repro.dataplane", "repro.core", "repro.measurement", "repro.cli",
            "repro.configgen", "repro.faults",
        ],
    )
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro", "repro.net.addr", "repro.net.lpm", "repro.bgp.router",
            "repro.bgp.session", "repro.bgp.damping", "repro.core.techniques",
            "repro.core.experiment", "repro.core.scenarios",
            "repro.faults.plan", "repro.faults.injector",
            "repro.faults.invariants",
            "repro.measurement.control", "repro.measurement.divergence",
        ],
    )
    def test_modules_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_version(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


class TestDocsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE", "pyproject.toml"]
    )
    def test_required_files(self, name):
        assert (ROOT / name).exists(), name

    def test_design_mentions_every_bench(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("test_bench_*.py")):
            assert bench.name in design, f"{bench.name} missing from DESIGN.md index"

    def test_readme_docs_links_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.findall(r"docs/(\w+\.md)", readme):
            assert (ROOT / "docs" / match).exists(), match

    def test_readme_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.findall(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / match).exists(), match

    def test_experiments_covers_each_figure_and_table(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for anchor in ("Figure 2", "Table 1", "Table 2", "Figure 3",
                       "Figure 4", "Figure 5", "Appendix C.1"):
            assert anchor in experiments, anchor


class TestTechniqueDocsMatchTable2:
    def test_docstring_present_on_every_technique(self):
        from repro.core.techniques import TECHNIQUES

        for cls in TECHNIQUES.values():
            assert cls.__doc__ and len(cls.__doc__.strip()) > 40, cls
