"""CLI tests for ``repro verify`` and the experiment verify gate."""

import argparse
import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.cli.common import run_verify
from repro.verify import load_world

FIXTURES = Path(__file__).parent / "fixtures" / "verify"


def fixture(stem: str) -> str:
    return str(FIXTURES / f"{stem}.json")


class TestVerifyCommand:
    def test_clean_world_exits_zero(self, capsys):
        assert main(["verify", fixture("clean")]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "1 world(s) checked" in out

    def test_error_finding_exits_one(self, capsys):
        assert main(["verify", fixture("bad_gao_cycle")]) == 1
        assert "VER201" in capsys.readouterr().out

    def test_warning_finding_exits_zero(self, capsys):
        assert main(["verify", fixture("bad_damping")]) == 0
        assert "VER213" in capsys.readouterr().out

    def test_multiple_worlds_accumulate(self, capsys):
        code = main([
            "verify", fixture("bad_gao_cycle"), fixture("bad_core_partition"),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "2 world(s) checked" in out
        assert "VER201" in out and "VER202" in out

    def test_json_format(self, capsys):
        assert main(["verify", fixture("bad_gao_cycle"), "-f", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["code"] == "VER201"

    def test_ignore_by_name(self, capsys):
        assert main(["verify", fixture("bad_gao_cycle"),
                     "--ignore", "gao-cycle"]) == 0

    def test_select(self, capsys):
        assert main(["verify", fixture("bad_gao_cycle"),
                     "--select", "VER202"]) == 0

    def test_unknown_check_is_usage_error(self, capsys):
        assert main(["verify", "--select", "VER999"]) == 2

    def test_missing_world_is_usage_error(self, tmp_path):
        assert main(["verify", str(tmp_path / "absent.json")]) == 2

    def test_malformed_world_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"ases": [], "wat": 1}))
        assert main(["verify", str(path)]) == 2
        assert "unknown world keys" in capsys.readouterr().err

    def test_list_checks(self, capsys):
        assert main(["verify", "--list-checks"]) == 0
        out = capsys.readouterr().out
        assert "VER201" in out and "dispute-wheel" in out
        assert "(strict)" in out

    def test_default_world_is_clean(self, capsys):
        """Acceptance: the shipped testbed verifies clean via the CLI."""
        assert main(["verify", "-t", "anycast", "reactive-anycast"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_strict_profile_stays_advisory(self, capsys):
        assert main(["verify", "-t", "anycast", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "VER223" in out and "0 error(s)" in out

    def test_unknown_site_is_usage_error(self, capsys):
        assert main(["verify", "-s", "lhr"]) == 2

    def test_metrics_flag_reports_verify_counters(self, capsys):
        assert main(["verify", fixture("clean"), "--metrics"]) == 0
        assert "verify.runs" in capsys.readouterr().out


class TestVerifyGate:
    def test_commands_expose_no_verify_flag(self):
        parser = build_parser()
        for command in ("failover", "compare", "sweep", "drill", "scenario"):
            args = parser.parse_args([command, "--no-verify"])
            assert args.no_verify

    def test_gate_blocks_on_errors(self, capsys):
        world = load_world(FIXTURES / "bad_gao_cycle.json")
        args = argparse.Namespace(no_verify=False)
        ok = run_verify(args, world.deployment, [])
        assert not ok
        err = capsys.readouterr().err
        assert "VER201" in err and "--no-verify" in err

    def test_override_lets_errors_through(self, capsys):
        world = load_world(FIXTURES / "bad_gao_cycle.json")
        args = argparse.Namespace(no_verify=True)
        ok = run_verify(args, world.deployment, [])
        assert ok
        assert "overridden by --no-verify" in capsys.readouterr().err

    def test_warnings_do_not_block(self, capsys):
        world = load_world(FIXTURES / "bad_site_dark.json")
        args = argparse.Namespace(no_verify=False)
        ok = run_verify(args, world.deployment, world.techniques)
        assert ok
        assert "VER224" in capsys.readouterr().err

    def test_gate_output_identical_across_worker_counts(self, capsys):
        """The gate runs pre-fanout, so its report never depends on -j."""
        world = load_world(FIXTURES / "bad_site_dark.json")
        outputs = []
        for workers in (1, 2):
            args = argparse.Namespace(no_verify=False, workers=workers)
            assert run_verify(args, world.deployment, world.techniques)
            outputs.append(capsys.readouterr().err)
        assert outputs[0] == outputs[1]


class TestGateEndToEnd:
    def test_failover_runs_through_both_gates(self, capsys):
        code = main([
            "failover", "-t", "reactive-anycast", "-s", "sea1",
            "--targets", "2", "--duration", "30", "--no-progress",
        ])
        assert code == 0
