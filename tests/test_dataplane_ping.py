"""Tests for the Verfploeter-style prober and site capture."""

import pytest

from repro.dataplane.capture import SiteCapture
from repro.dataplane.forwarding import ForwardingPlane
from repro.dataplane.ping import Prober
from repro.topology.generator import generate_topology
from repro.topology.testbed import PROBE_SOURCE, SPECIFIC_PREFIX, build_deployment

from tests.conftest import FAST_TIMING, SMALL_PARAMS
from repro.topology.testbed import SiteSpec


@pytest.fixture(scope="module")
def small_deployment():
    topo = generate_topology(SMALL_PARAMS)
    specs = [
        SiteSpec(name="west", region="us-west", providers=("tr-us-west-0",)),
        SiteSpec(name="east", region="us-east", providers=("tr-us-east-0",)),
    ]
    return build_deployment(topology=topo, specs=specs)


def start_probing(deployment, announce_sites, vantage="east", n_targets=3):
    net = deployment.topology.build_network(seed=1, timing=FAST_TIMING)
    for site in announce_sites:
        net.announce(deployment.site_node(site), SPECIFIC_PREFIX)
    net.converge()
    plane = ForwardingPlane(net, deployment.topology)
    capture = SiteCapture()
    prober = Prober(plane, deployment, capture, PROBE_SOURCE, vantage)
    targets = {
        info.prefix.address(1): info.node_id
        for info in deployment.topology.web_client_ases()[:n_targets]
    }
    return net, prober, capture, targets


class TestProbing:
    def test_replies_captured_at_announcing_site(self, small_deployment):
        net, prober, capture, targets = start_probing(small_deployment, ["west"])
        for addr, node in targets.items():
            prober.probe_once(addr, node)
        net.converge()
        assert len(capture) == len(targets)
        assert capture.sites_seen() == {"west"}

    def test_sequence_numbers_unique_and_logged(self, small_deployment):
        net, prober, capture, targets = start_probing(small_deployment, ["west"])
        for _ in range(3):
            for addr, node in targets.items():
                prober.probe_once(addr, node)
        net.converge()
        seqs = [e.seq for e in capture.entries]
        assert len(seqs) == len(set(seqs))
        sent = [p.seq for log in prober.logs.values() for p in log.sent]
        assert set(seqs) <= set(sent)

    def test_no_announcement_means_lost_replies(self, small_deployment):
        net, prober, capture, targets = start_probing(small_deployment, [])
        for addr, node in targets.items():
            prober.probe_once(addr, node)
        net.converge()
        assert len(capture) == 0
        assert len(prober.lost_replies) == len(targets)

    def test_dead_site_loses_replies(self, small_deployment):
        net, prober, capture, targets = start_probing(small_deployment, ["west"])
        prober.dead_sites.add("west")
        for addr, node in targets.items():
            prober.probe_once(addr, node)
        net.converge()
        assert len(capture) == 0
        assert prober.lost_replies

    def test_start_paces_probes(self, small_deployment):
        net, prober, capture, targets = start_probing(small_deployment, ["west"])
        one = dict(list(targets.items())[:1])
        prober.start(one, interval=1.5, duration=9.0)
        net.run_for(15.0)
        log = prober.logs[next(iter(one))]
        # ~7 probes in 9 s at 1.5 s cadence (first at t=0).
        assert 6 <= len(log.sent) <= 8
        gaps = [b.sent_at - a.sent_at for a, b in zip(log.sent, log.sent[1:])]
        assert all(abs(g - 1.5) < 1e-6 for g in gaps)

    def test_capture_for_target_filters(self, small_deployment):
        net, prober, capture, targets = start_probing(small_deployment, ["west"])
        for addr, node in targets.items():
            prober.probe_once(addr, node)
        net.converge()
        addr = next(iter(targets))
        entries = capture.for_target(addr)
        assert entries
        assert all(e.target == addr for e in entries)

    def test_capture_clear(self, small_deployment):
        net, prober, capture, targets = start_probing(small_deployment, ["west"])
        for addr, node in targets.items():
            prober.probe_once(addr, node)
        net.converge()
        capture.clear()
        assert len(capture) == 0
