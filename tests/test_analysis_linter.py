"""Engine-level tests: noqa forms, selection, reporters, self-check."""

import json
from pathlib import Path

from repro.analysis import (
    PARSE_ERROR_CODE,
    RULES,
    LintEngine,
    lint_paths,
    render_json,
    render_text,
    resolve_codes,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

HAZARD = "import random\nrng = random.Random()\nvalue = random.random()\n"


class TestNoqa:
    def test_blanket_noqa_suppresses_all(self):
        source = "rng = random.Random(hash(x))  # repro: noqa\n"
        assert LintEngine().lint_source(source) == []

    def test_coded_noqa_is_selective(self):
        source = (
            "import time\n"
            "t0 = time.time()  # repro: noqa[DET001]\n"  # wrong code
        )
        assert [f.code for f in LintEngine().lint_source(source)] == ["DET004"]

    def test_multiple_codes(self):
        source = "x = random.Random(hash(y))  # repro: noqa[DET003, DET001]\n"
        assert LintEngine().lint_source(source) == []

    def test_noqa_only_covers_its_line(self):
        source = (
            "a = random.Random()  # repro: noqa[DET001]\n"
            "b = random.Random()\n"
        )
        findings = LintEngine().lint_source(source)
        assert [(f.code, f.line) for f in findings] == [("DET001", 2)]

    def test_case_insensitive_directive(self):
        source = "rng = random.Random()  # REPRO: NOQA[det001]\n"
        assert LintEngine().lint_source(source) == []


class TestSelection:
    def test_select_restricts_rules(self):
        engine = LintEngine(select={"DET001"})
        assert [f.code for f in engine.lint_source(HAZARD)] == ["DET001"]

    def test_ignore_removes_rules(self):
        engine = LintEngine(ignore={"DET001"})
        assert [f.code for f in engine.lint_source(HAZARD)] == ["DET002"]

    def test_resolve_codes_accepts_names_and_codes(self):
        assert resolve_codes(["det001", "module-random"]) == {"DET001", "DET002"}

    def test_resolve_codes_rejects_unknown(self):
        try:
            resolve_codes(["DET999"])
        except ValueError as error:
            assert "DET999" in str(error)
        else:
            raise AssertionError("expected ValueError")


class TestEngineMechanics:
    def test_syntax_error_is_a_finding(self):
        findings = LintEngine().lint_source("def broken(:\n")
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]

    def test_findings_sorted_by_position(self):
        source = "b = random.random()\na = random.Random()\n"
        findings = LintEngine().lint_source(source)
        assert [f.line for f in findings] == [1, 2]

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("import random\nrandom.seed(1)\n")
        findings = lint_paths([tmp_path])
        assert [f.code for f in findings] == ["DET002"]
        assert findings[0].source.endswith("bad.py")

    def test_missing_file_is_a_finding(self, tmp_path):
        findings = LintEngine().lint_paths([tmp_path / "nope.py"])
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]


class TestReporters:
    def test_text_report_positions_and_summary(self):
        findings = LintEngine().lint_source(HAZARD, path="x.py")
        text = render_text(findings)
        assert "x.py:2" in text
        assert "DET001" in text
        assert "2 finding(s)" in text

    def test_text_report_clean(self):
        assert render_text([]) == "no findings"

    def test_json_report_round_trips(self):
        findings = LintEngine().lint_source(HAZARD, path="x.py")
        payload = json.loads(render_json(findings))
        assert payload["count"] == 2
        assert payload["errors"] == 2
        assert {f["code"] for f in payload["findings"]} == {"DET001", "DET002"}


class TestSelfCheck:
    def test_src_repro_lints_clean(self):
        """The shipped tree must stay clean under its own linter (the
        same gate CI applies)."""
        findings = lint_paths([REPO_ROOT / "src" / "repro"])
        assert findings == [], "\n" + render_text(findings)

    def test_rule_catalogue_is_documented(self):
        """Every rule code appears in docs/static-analysis.md."""
        doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text()
        for code in RULES:
            assert code in doc, f"rule {code} missing from docs/static-analysis.md"
