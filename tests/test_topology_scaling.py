"""Generator scaling and parameter-surface tests."""

import pytest

from repro.topology.generator import TopologyParams, generate_topology
from repro.topology.relationships import AsClass
from repro.topology.testbed import build_deployment

from tests.conftest import FAST_TIMING
from repro.net.addr import IPv4Prefix

PFX = IPv4Prefix.parse("184.164.244.0/24")


class TestScaling:
    def test_minimal_topology(self):
        """The smallest sensible parameterization still builds and
        converges."""
        params = TopologyParams(
            seed=1, n_tier1=3, n_transit_per_region=1, n_regional_per_region=0,
            n_eyeball_per_region=1, n_stub_per_region=0,
            n_university_per_region=1, n_re_backbone=2, n_hypergiant=1,
            transit_providers=1, regional_providers=1,
        )
        topology = generate_topology(params)
        network = topology.build_network(timing=FAST_TIMING)
        origin = topology.web_client_ases()[0].node_id
        network.announce(origin, PFX)
        network.converge()
        reachable = sum(
            1 for node in network.nodes()
            if network.router(node).best_route(PFX) is not None
        )
        assert reachable == len(network.nodes())

    def test_double_scale_topology(self):
        """2x the default client population: still connected, still
        unique prefixes, roughly 2x the ASes."""
        default_size = len(generate_topology().ases)
        params = TopologyParams(
            n_eyeball_per_region=28, n_university_per_region=8,
            n_stub_per_region=6,
        )
        topology = generate_topology(params)
        assert len(topology.ases) > 1.5 * default_size
        prefixes = [a.prefix for a in topology.ases.values() if a.prefix]
        assert len(prefixes) == len(set(prefixes))

    def test_many_hypergiants(self):
        params = TopologyParams(n_hypergiant=8)
        topology = generate_topology(params)
        giants = topology.by_class(AsClass.HYPERGIANT)
        assert len(giants) == 8
        blocks = [g.prefix for g in giants]
        assert len(blocks) == len(set(blocks))

    def test_event_volume_scales_linearly_enough(self):
        """A single-prefix announcement produces O(links) update events,
        not worse -- the property that keeps big runs tractable."""
        small = generate_topology(TopologyParams(seed=3, n_eyeball_per_region=4))
        large = generate_topology(TopologyParams(seed=3, n_eyeball_per_region=16))

        def events_for(topology):
            network = topology.build_network(timing=FAST_TIMING)
            origin = topology.by_class(AsClass.HYPERGIANT)[0].node_id
            network.announce(origin, PFX)
            network.converge()
            return network.engine.processed, len(topology.links)

        small_events, small_links = events_for(small)
        large_events, large_links = events_for(large)
        assert large_events / small_events < 3.0 * (large_links / small_links)


class TestDeploymentOnScaledTopology:
    def test_sites_attach_to_scaled_topology(self):
        """Default site specs survive a client-population rescale (they
        reference transit/uni/re nodes whose names don't depend on the
        eyeball counts)."""
        params = TopologyParams(n_eyeball_per_region=20)
        deployment = build_deployment(params=params)
        assert len(deployment.site_names) == 8

    def test_fewer_universities_break_specs_loudly(self):
        """Shrinking below the names the specs use fails with a clear
        error instead of silently mis-attaching."""
        params = TopologyParams(n_university_per_region=1)
        with pytest.raises(ValueError, match="uni-"):
            build_deployment(params=params)
