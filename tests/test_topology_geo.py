"""Unit tests for the geography and latency model."""

import math
import random

from hypothesis import given, strategies as st

from repro.topology.geo import (
    KM_PER_MS,
    REGIONS,
    Location,
    distance_km,
    link_latency_s,
    place_in,
    rtt_ms,
)


class TestRegions:
    def test_paper_site_regions_exist(self):
        """Every region a default site lives in must be defined."""
        for region in ("us-west", "us-mountain", "us-central", "us-east",
                       "eu-west", "eu-south", "sa-east"):
            assert region in REGIONS

    def test_transatlantic_scale(self):
        """us-east <-> eu-west should be far beyond the 50 ms RTT bound."""
        a = REGIONS["us-east"]
        b = REGIONS["eu-west"]
        d = math.hypot(a.x - b.x, a.y - b.y)
        rtt = 2 * d / KM_PER_MS
        assert rtt > 50.0

    def test_intra_us_east_west_within_reach(self):
        """Coast-to-coast stays around the 50 ms boundary, so proximity
        filters discriminate within the US."""
        a = REGIONS["us-west"]
        b = REGIONS["us-east"]
        rtt = 2 * math.hypot(a.x - b.x, a.y - b.y) / KM_PER_MS
        assert 20.0 < rtt < 60.0


class TestPlacement:
    def test_place_in_within_spread(self):
        rng = random.Random(0)
        for _ in range(50):
            loc = place_in("eu-west", rng)
            region = REGIONS["eu-west"]
            assert distance_km(loc, Location("eu-west", region.x, region.y)) <= region.spread + 1e-9
            assert loc.region == "eu-west"

    def test_placement_deterministic_per_rng(self):
        assert place_in("us-west", random.Random(1)) == place_in("us-west", random.Random(1))


class TestLatency:
    def test_zero_distance_has_overhead_only(self):
        loc = Location("x", 0.0, 0.0)
        assert link_latency_s(loc, loc, overhead_ms=1.0) == 0.001

    def test_latency_scales_with_distance(self):
        a = Location("x", 0.0, 0.0)
        b = Location("x", 2000.0, 0.0)
        # 2000 km at 200 km/ms = 10 ms + 1 ms overhead
        assert abs(link_latency_s(a, b) - 0.011) < 1e-9

    def test_rtt_ms_doubles_and_converts(self):
        assert rtt_ms([0.010, 0.005]) == 30.0

    @given(
        st.floats(min_value=-1e4, max_value=1e4),
        st.floats(min_value=-1e4, max_value=1e4),
        st.floats(min_value=-1e4, max_value=1e4),
        st.floats(min_value=-1e4, max_value=1e4),
    )
    def test_distance_symmetric(self, x1, y1, x2, y2):
        a = Location("r", x1, y1)
        b = Location("r", x2, y2)
        assert distance_km(a, b) == distance_km(b, a)
