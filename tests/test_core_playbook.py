"""Tests for the anycast-agility playbook."""

import pytest

from repro.core.playbook import Playbook

from tests.conftest import FAST_TIMING


@pytest.fixture(scope="module")
def playbook(deployment):
    book = Playbook(deployment.topology, deployment, timing=FAST_TIMING)
    book.build_drain_plays(prepend_levels=(0, 3, 5))
    return book


class TestPlaybook:
    def test_baseline_recorded(self, playbook):
        baseline = playbook.baseline()
        assert all(level == 0 for _, level in baseline.prepends)
        assert baseline.unrouted == 0

    def test_drain_plays_cover_every_site(self, playbook, deployment):
        prepended_sites = {
            site
            for entry in playbook.entries
            for site, level in entry.prepends
            if level > 0
        }
        assert prepended_sites == set(deployment.site_names)

    def test_prepending_a_site_drains_it(self, playbook, deployment):
        """Prepending only at one site shifts its catchment share down
        relative to baseline (the playbook's whole purpose)."""
        baseline = playbook.baseline()
        drained_any = False
        for entry in playbook.entries:
            prepended = [site for site, level in entry.prepends if level > 0]
            if len(prepended) != 1:
                continue
            site = prepended[0]
            if entry.load_share(site) < baseline.load_share(site):
                drained_any = True
        assert drained_any

    def test_no_play_blackholes_clients(self, playbook):
        assert all(entry.unrouted == 0 for entry in playbook.entries)

    def test_best_drain_minimizes_site_share(self, playbook):
        baseline = playbook.baseline()
        # Pick a site with meaningful baseline load.
        site = max(
            (s for s, _ in baseline.catchment),
            key=lambda s: baseline.load_share(s),
        )
        best = playbook.best_drain(site)
        assert best.load_share(site) <= baseline.load_share(site)

    def test_best_drain_respects_overload_bound(self, playbook):
        baseline = playbook.baseline()
        site = max(
            (s for s, _ in baseline.catchment),
            key=lambda s: baseline.load_share(s),
        )
        bound = 0.9
        best = playbook.best_drain(site, max_overload=bound)
        for other, _ in best.catchment:
            if other != site:
                assert best.load_share(other) <= bound

    def test_best_drain_unsatisfiable_bound(self, playbook):
        with pytest.raises(LookupError):
            playbook.best_drain("sea1", max_overload=0.01)

    def test_baseline_before_building_raises(self, deployment):
        empty = Playbook(deployment.topology, deployment, timing=FAST_TIMING)
        with pytest.raises(LookupError):
            empty.baseline()

    def test_load_shares_sum_to_one(self, playbook):
        for entry in playbook.entries:
            total = sum(entry.load_share(site) for site, _ in entry.catchment)
            assert total == pytest.approx(1.0)
