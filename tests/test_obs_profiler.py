"""Hot-path profiler: recording, merge associativity, engine wiring."""

from __future__ import annotations

import functools

from repro.net.addr import IPv4Prefix
from repro.obs import PROFILE_SCHEMA, EventProfiler, callback_name, render_profile
from repro.telemetry import Telemetry, using

from tests.conftest import build_line_network

PREFIX = IPv4Prefix.parse("184.164.254.0/24")


class TestRecording:
    def test_callback_accumulates_count_and_wall(self):
        profiler = EventProfiler()
        profiler.record_callback("Session._mrai_expired", 0.25)
        profiler.record_callback("Session._mrai_expired", 0.75)
        state = profiler.state()
        assert state["schema"] == PROFILE_SCHEMA
        entry = state["callbacks"]["Session._mrai_expired"]
        assert entry == {"count": 2, "wall_s": 1.0}

    def test_phase_accumulates_runs_wall_and_sim(self):
        profiler = EventProfiler()
        profiler.record_phase("fail-probe", 2.0, 300.0)
        profiler.record_phase("fail-probe", 1.0, 100.0)
        entry = profiler.state()["phases"]["fail-probe"]
        assert entry == {"runs": 2, "wall_s": 3.0, "sim_s": 400.0}

    def test_state_is_sorted_and_json_safe(self):
        profiler = EventProfiler()
        profiler.record_callback("zeta", 0.1)
        profiler.record_callback("alpha", 0.1)
        assert list(profiler.state()["callbacks"]) == ["alpha", "zeta"]


class TestCallbackName:
    def test_qualname_preferred(self):
        def inner():
            pass

        assert "inner" in callback_name(inner)

    def test_partial_falls_back_to_type_name(self):
        bound = functools.partial(print, "x")
        assert callback_name(bound) == "partial"


class TestMerge:
    def filled(self, scale):
        profiler = EventProfiler()
        profiler.record_callback("a", 1.0 * scale)
        profiler.record_callback("b", 2.0 * scale)
        profiler.record_phase("p", 1.0 * scale, 10.0 * scale)
        return profiler

    def test_merge_sums_counts_and_durations(self):
        target = self.filled(1)
        target.merge_state(self.filled(2).state())
        state = target.state()
        assert state["callbacks"]["a"] == {"count": 2, "wall_s": 3.0}
        assert state["phases"]["p"] == {"runs": 2, "wall_s": 3.0, "sim_s": 30.0}

    def test_merge_is_associative(self):
        # (a + b) + c == a + (b + c): the property worker-pool merge
        # order relies on
        left = self.filled(1)
        left.merge_state(self.filled(2).state())
        left.merge_state(self.filled(3).state())

        bc = self.filled(2)
        bc.merge_state(self.filled(3).state())
        right = self.filled(1)
        right.merge_state(bc.state())

        assert left.state() == right.state()

    def test_merge_into_empty_is_identity(self):
        empty = EventProfiler()
        empty.merge_state(self.filled(1).state())
        assert empty.state() == self.filled(1).state()


class TestEngineWiring:
    def test_engine_attributes_callbacks_when_profiling(self):
        profiler = EventProfiler()
        with using(Telemetry(profiler=profiler)):
            net = build_line_network(3)
            net.announce("r0", PREFIX)
            net.converge()
        callbacks = profiler.state()["callbacks"]
        assert callbacks, "a converging network should profile its callbacks"
        # delivery callbacks dominate any BGP run
        assert any("deliver" in name for name in callbacks)
        assert all(entry["count"] > 0 for entry in callbacks.values())
        assert all(entry["wall_s"] >= 0.0 for entry in callbacks.values())

    def test_phase_context_reports_to_profiler(self):
        profiler = EventProfiler()
        telemetry = Telemetry(profiler=profiler)
        with using(telemetry):
            net = build_line_network(2)
            with telemetry.phase("converge"):
                net.announce("r0", PREFIX)
                net.converge()
        phases = profiler.state()["phases"]
        assert phases["converge"]["runs"] == 1
        assert phases["converge"]["sim_s"] >= 0.0

    def test_no_profiler_records_nothing(self):
        with using(Telemetry()):
            net = build_line_network(2)
            net.announce("r0", PREFIX)
            net.converge()
        # nothing to assert on a profiler -- the engine just must not
        # crash when telemetry is enabled without one


class TestRenderProfile:
    def state(self):
        profiler = EventProfiler()
        profiler.record_callback("Session._make_delivery.<locals>.deliver", 0.9)
        profiler.record_callback("Session._mrai_expired", 0.1)
        profiler.record_phase("fail-probe", 1.0, 240.0)
        return profiler.state()

    def test_report_ranks_by_wall_time(self):
        text = render_profile(self.state())
        assert "2 engine callbacks" in text
        deliver = text.index("deliver")
        mrai = text.index("_mrai_expired")
        assert deliver < mrai
        assert "90.0%" in text

    def test_top_truncates_with_remainder_line(self):
        text = render_profile(self.state(), top=1)
        assert "... 1 more" in text

    def test_phases_rendered_with_speedup(self):
        text = render_profile(self.state())
        assert "fail-probe" in text
        assert "240.0x" in text

    def test_empty_state_renders(self):
        text = render_profile({"callbacks": {}, "phases": {}})
        assert "0 engine callbacks" in text
