"""Tests for the quiescent-network snapshot/restore codec."""

import dataclasses
import pickle

import pytest

from repro.bgp.damping import DampingConfig, RouteDamping
from repro.bgp.engine import EventEngine
from repro.bgp.network import BgpNetwork
from repro.bgp.session import SessionTiming
from repro.checkpoint import (
    SNAPSHOT_SCHEMA,
    CheckpointError,
    NetworkSnapshot,
    NotQuiescentError,
    restore_network,
    snapshot_network,
)
from repro.net.addr import IPv4Prefix

from tests.conftest import build_line_network

PFX = IPv4Prefix.parse("184.164.244.0/24")
PFX2 = IPv4Prefix.parse("184.164.245.0/24")

#: Enough randomness to make divergence obvious: jitter, MRAI pacing,
#: busy sessions, heterogeneous effective MRAIs.
RICH_TIMING = SessionTiming(
    latency=0.05, jitter=0.5, mrai=5.0, busy_prob=0.3, mrai_sigma=0.5
)


def fingerprint(net: BgpNetwork) -> dict:
    """Everything that determines future behavior, as comparable data."""
    return {
        "now": net.now,
        "rng": net.rng.getstate(),
        "next_cause": net._next_cause,
        "routers": {
            name: {
                "loc_rib": net.router(name).loc_rib.export_state(),
                "adj_rib_in": net.router(name).adj_rib_in.export_state(),
                "fib": sorted(net.router(name).fib.items()),
                "origins": net.router(name).export_origins(),
            }
            for name in net.routers
        },
        "sessions": {
            (local, remote): (
                session.mrai,
                session.epoch,
                sorted(session.advertised),
                session.closed,
            )
            for local in net.routers
            for remote, session in net.router(local).sessions.items()
        },
        "adjacency": net.adjacency,
    }


def converged_net(seed: int = 11) -> BgpNetwork:
    net = build_line_network(4, seed=seed, timing=RICH_TIMING)
    net.announce("r0", PFX)
    net.converge()
    return net


class TestQuiescenceGuard:
    def test_pending_events_rejected(self):
        net = converged_net()
        net.announce("r0", PFX2)  # updates now in flight
        assert net.engine.pending > 0
        with pytest.raises(NotQuiescentError):
            snapshot_network(net)

    def test_session_transfer_state_guard(self):
        """The per-session guard backs up the engine-level one."""
        net = converged_net()
        net.announce("r0", PFX2)
        sessions = [
            s for name in net.routers for s in net.router(name).sessions.values()
        ]
        busy = [s for s in sessions if s._pending or s._mrai_running]
        assert busy, "announce should leave at least one session mid-MRAI"
        with pytest.raises(RuntimeError, match="not quiescent"):
            busy[0].transfer_state()


class TestRoundTrip:
    def test_restore_preserves_all_state(self):
        net = converged_net()
        clone = restore_network(snapshot_network(net))
        assert fingerprint(clone) == fingerprint(net)

    def test_snapshot_does_not_disturb_original(self):
        net = converged_net()
        before = fingerprint(net)
        snapshot_network(net)
        assert fingerprint(net) == before

    def test_restored_network_simulates_identically(self):
        """The fork contract: the clone continues exactly like the
        original would -- same event times, same final routes, same RNG
        stream consumption -- through a withdrawal (path hunting, the
        RNG-heaviest workload)."""
        net = converged_net()
        clone = restore_network(snapshot_network(net))
        assert net.withdraw("r0", PFX) and clone.withdraw("r0", PFX)
        assert net.converge() == clone.converge()
        assert fingerprint(clone) == fingerprint(net)

    def test_forks_are_independent(self):
        """Mutating one fork must not leak into another."""
        snapshot = snapshot_network(converged_net())
        fork_a = restore_network(snapshot)
        fork_b = restore_network(snapshot)
        fork_a.withdraw("r0", PFX)
        fork_a.converge()
        assert fork_a.router("r3").best_route(PFX) is None
        assert fork_b.router("r3").best_route(PFX) is not None

    def test_reseeded_forks_diverge_only_by_rng(self):
        """The sweep's per-cell reseed: same state, fresh stream."""
        snapshot = snapshot_network(converged_net())
        fork_a = restore_network(snapshot)
        fork_b = restore_network(snapshot)
        fork_a.rng.seed(1)
        fork_b.rng.seed(1)
        fork_a.withdraw("r0", PFX)
        fork_b.withdraw("r0", PFX)
        assert fork_a.converge() == fork_b.converge()
        assert fingerprint(fork_a) == fingerprint(fork_b)

    def test_failed_links_survive_round_trip(self):
        net = converged_net()
        net.fail_link("r2", "r3")
        net.converge()
        clone = restore_network(snapshot_network(net))
        assert clone.is_link_failed("r2", "r3")
        assert not clone.has_link("r2", "r3")
        clone.restore_link("r2", "r3")
        clone.converge()
        assert clone.router("r3").best_route(PFX) is not None

    def test_message_loss_knobs_survive_round_trip(self):
        net = converged_net()
        net.set_message_loss("r0", "r1", loss_prob=0.25, dup_prob=0.125)
        net.converge()
        clone = restore_network(snapshot_network(net))
        session = clone.router("r0").sessions["r1"]
        assert session.loss_prob == 0.25
        assert session.dup_prob == 0.125


class TestDampingRoundTrip:
    DAMPING = DampingConfig(
        penalty_per_flap=1000.0,
        suppress_threshold=1500.0,
        reuse_threshold=750.0,
        half_life=30.0,
        max_penalty=4000.0,
    )

    def test_penalties_survive_round_trip(self):
        net = BgpNetwork(seed=3, default_timing=RICH_TIMING, damping=self.DAMPING)
        for i in range(3):
            net.add_router(f"r{i}", 100 + i)
        net.add_provider("r0", "r1")
        net.add_provider("r1", "r2")
        net.announce("r0", PFX)
        net.converge()
        # One flap: penalty accrues but nothing is suppressed, so no
        # release timer keeps the network from quiescing.
        net.withdraw("r0", PFX)
        net.announce("r0", PFX)
        net.converge()
        damping = net.router("r2").damping
        assert damping is not None and damping.flaps > 0
        clone = restore_network(snapshot_network(net))
        restored = clone.router("r2").damping
        assert restored.export_state() == damping.export_state()
        assert restored.flaps == damping.flaps

    def test_import_state_rearms_release_timers(self):
        """Suppressed entries restored directly (the codec's damping
        import path) must re-arm their release timers."""
        engine = EventEngine()
        damping = RouteDamping(engine, self.DAMPING, on_release=lambda p: None)
        damping.record_flap(PFX, "n1")
        damping.record_flap(PFX, "n1")
        assert damping.is_suppressed(PFX, "n1")
        exported = (damping.export_state(), damping.flaps, damping.suppressions)

        fresh_engine = EventEngine()
        released = []
        fresh = RouteDamping(fresh_engine, self.DAMPING, on_release=released.append)
        fresh.import_state(*exported)
        assert fresh.is_suppressed(PFX, "n1")
        assert fresh.suppressed_neighbors(PFX) == {"n1"}
        assert fresh_engine.pending == 1
        fresh_engine.run_until_idle()
        assert not fresh.is_suppressed(PFX, "n1")
        assert released == [PFX]

    def test_restore_without_damping_config_rejected(self):
        net = BgpNetwork(seed=3, default_timing=RICH_TIMING, damping=self.DAMPING)
        net.add_router("r0", 100)
        snapshot = snapshot_network(net)
        broken = dataclasses.replace(snapshot, damping_config=None)
        with pytest.raises(CheckpointError, match="damping"):
            restore_network(broken)


class TestSerialization:
    def test_dumps_loads_round_trip(self):
        snapshot = snapshot_network(converged_net())
        clone = NetworkSnapshot.loads(snapshot.dumps())
        assert clone == snapshot
        assert fingerprint(restore_network(clone)) == fingerprint(
            restore_network(snapshot)
        )

    def test_dumps_deterministic(self):
        """Byte-identical snapshots for byte-identical networks -- the
        property the sweep's serial-vs-workers guarantee rests on."""
        a = snapshot_network(converged_net(seed=11))
        b = snapshot_network(converged_net(seed=11))
        assert a.dumps() == b.dumps()

    def test_loads_rejects_wrong_schema(self):
        snapshot = snapshot_network(converged_net())
        alien = dataclasses.replace(snapshot, schema="repro.checkpoint/0")
        with pytest.raises(CheckpointError, match="schema"):
            NetworkSnapshot.loads(alien.dumps())

    def test_loads_rejects_non_snapshot(self):
        with pytest.raises(CheckpointError, match="NetworkSnapshot"):
            NetworkSnapshot.loads(pickle.dumps({"not": "a snapshot"}))

    def test_schema_constant_matches(self):
        assert snapshot_network(converged_net()).schema == SNAPSHOT_SCHEMA


class TestTelemetryRebinding:
    def test_restore_binds_current_backend(self):
        """A snapshot taken without telemetry restores under an enabled
        backend and emits from the restored components."""
        from repro import telemetry

        snapshot = snapshot_network(converged_net())
        tracer = telemetry.TraceRecorder()
        with telemetry.using(telemetry.Telemetry(tracer=tracer)):
            clone = restore_network(snapshot)
            clone.withdraw("r0", PFX)
            clone.converge()
        from repro.telemetry.trace import BgpUpdateSent, RootCause

        assert any(isinstance(e, RootCause) for e in tracer.events)
        assert any(isinstance(e, BgpUpdateSent) for e in tracer.events)
