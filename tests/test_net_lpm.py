"""Unit and property tests for the LPM trie."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.addr import IPv4Address, IPv4Prefix
from repro.net.lpm import LpmTrie


def P(text: str) -> IPv4Prefix:
    return IPv4Prefix.parse(text)


def A(text: str) -> IPv4Address:
    return IPv4Address.parse(text)


class TestLpmTrieBasics:
    def test_empty_lookup(self):
        assert LpmTrie().lookup(A("10.0.0.1")) is None

    def test_insert_and_exact_get(self):
        trie = LpmTrie()
        trie.insert(P("10.0.0.0/8"), "x")
        assert trie.get(P("10.0.0.0/8")) == "x"
        assert trie.get(P("10.0.0.0/16")) is None

    def test_longest_match_wins(self):
        trie = LpmTrie()
        trie.insert(P("10.0.0.0/8"), "coarse")
        trie.insert(P("10.1.0.0/16"), "fine")
        assert trie.lookup(A("10.1.2.3")) == (P("10.1.0.0/16"), "fine")
        assert trie.lookup(A("10.2.0.0")) == (P("10.0.0.0/8"), "coarse")

    def test_superprefix_fallback_after_removal(self):
        """The longest-prefix-matching behaviour proactive-superprefix
        relies on: while the /24 exists it wins; after removal the /23
        takes over."""
        trie = LpmTrie()
        trie.insert(P("184.164.244.0/23"), "backup")
        trie.insert(P("184.164.244.0/24"), "specific")
        probe = A("184.164.244.10")
        assert trie.lookup(probe)[1] == "specific"
        assert trie.remove(P("184.164.244.0/24"))
        assert trie.lookup(probe)[1] == "backup"

    def test_remove_missing_returns_false(self):
        trie = LpmTrie()
        assert not trie.remove(P("10.0.0.0/8"))

    def test_replace_value(self):
        trie = LpmTrie()
        trie.insert(P("10.0.0.0/8"), "a")
        trie.insert(P("10.0.0.0/8"), "b")
        assert trie.get(P("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_len_tracks_distinct_prefixes(self):
        trie = LpmTrie()
        trie.insert(P("10.0.0.0/8"), 1)
        trie.insert(P("10.0.0.0/16"), 2)
        assert len(trie) == 2
        trie.remove(P("10.0.0.0/8"))
        assert len(trie) == 1

    def test_contains(self):
        trie = LpmTrie()
        trie.insert(P("10.0.0.0/8"), 1)
        assert P("10.0.0.0/8") in trie
        assert P("10.0.0.0/9") not in trie

    def test_default_route(self):
        trie = LpmTrie()
        trie.insert(P("0.0.0.0/0"), "default")
        assert trie.lookup(A("203.0.113.7")) == (P("0.0.0.0/0"), "default")

    def test_host_route(self):
        trie = LpmTrie()
        trie.insert(P("10.0.0.0/8"), "net")
        trie.insert(P("10.0.0.1/32"), "host")
        assert trie.lookup(A("10.0.0.1"))[1] == "host"
        assert trie.lookup(A("10.0.0.2"))[1] == "net"

    def test_items_returns_all(self):
        trie = LpmTrie()
        prefixes = [P("10.0.0.0/8"), P("10.1.0.0/16"), P("192.168.0.0/24")]
        for i, prefix in enumerate(prefixes):
            trie.insert(prefix, i)
        assert dict(trie.items()) == {p: i for i, p in enumerate(prefixes)}

    def test_clear(self):
        trie = LpmTrie()
        trie.insert(P("10.0.0.0/8"), 1)
        trie.clear()
        assert len(trie) == 0
        assert trie.lookup(A("10.0.0.1")) is None

    def test_lookup_returns_matched_prefix(self):
        trie = LpmTrie()
        trie.insert(P("10.1.2.0/24"), "v")
        match = trie.lookup(A("10.1.2.200"))
        assert match == (P("10.1.2.0/24"), "v")


class TestNodePruning:
    """remove() must prune dead interior nodes: announce/withdraw churn
    (reactive-anycast's steady state) otherwise grows the trie forever."""

    def test_remove_prunes_back_to_root(self):
        trie = LpmTrie()
        assert trie.node_count() == 1
        trie.insert(P("10.1.2.0/24"), "v")
        assert trie.node_count() == 25  # root + one node per bit
        trie.remove(P("10.1.2.0/24"))
        assert trie.node_count() == 1

    def test_remove_keeps_shared_spine(self):
        trie = LpmTrie()
        trie.insert(P("10.0.0.0/8"), "coarse")
        trie.insert(P("10.1.0.0/16"), "fine")
        baseline = trie.node_count()
        trie.remove(P("10.1.0.0/16"))
        assert trie.node_count() == 9  # root + the /8 spine
        trie.insert(P("10.1.0.0/16"), "fine")
        assert trie.node_count() == baseline

    def test_remove_keeps_deeper_entries(self):
        """Removing a covering prefix must not orphan the more-specific
        one below it (the superprefix/specific pair of §3)."""
        trie = LpmTrie()
        trie.insert(P("184.164.244.0/23"), "backup")
        trie.insert(P("184.164.244.0/24"), "specific")
        trie.remove(P("184.164.244.0/23"))
        assert trie.lookup(A("184.164.244.10")) == (P("184.164.244.0/24"), "specific")
        assert trie.node_count() == 25  # root + 24-bit spine, /23 node kept as spine

    def test_churn_does_not_grow_the_trie(self):
        """10k announce/withdraw cycles end at the pre-churn baseline."""
        trie = LpmTrie()
        trie.insert(P("184.164.244.0/23"), "superprefix")  # steady announcement
        baseline = trie.node_count()
        flapping = P("184.164.244.0/24")
        for _ in range(10_000):
            trie.insert(flapping, "specific")
            assert trie.remove(flapping)
        assert trie.node_count() == baseline
        assert len(trie) == 1

    def test_churn_across_many_prefixes(self):
        trie = LpmTrie()
        baseline = trie.node_count()
        prefixes = [P(f"10.{i}.0.0/16") for i in range(64)]
        for _ in range(20):
            for prefix in prefixes:
                trie.insert(prefix, str(prefix))
            for prefix in prefixes:
                assert trie.remove(prefix)
        assert trie.node_count() == baseline
        assert len(trie) == 0


class TestNoneValues:
    def test_insert_none_rejected(self):
        """None would be indistinguishable from 'absent' in get()."""
        trie = LpmTrie()
        with pytest.raises(ValueError, match="None"):
            trie.insert(P("10.0.0.0/8"), None)
        assert len(trie) == 0
        assert P("10.0.0.0/8") not in trie

    def test_contains_agrees_with_get(self):
        trie = LpmTrie()
        trie.insert(P("10.0.0.0/8"), 0)  # falsy value still counts
        assert P("10.0.0.0/8") in trie
        assert trie.get(P("10.0.0.0/8")) == 0
        trie.remove(P("10.0.0.0/8"))
        assert P("10.0.0.0/8") not in trie
        assert trie.get(P("10.0.0.0/8")) is None


prefix_strategy = st.builds(
    lambda value, length: IPv4Prefix.of(IPv4Address(value), length),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
)


class TestLpmTrieProperties:
    @settings(max_examples=50)
    @given(
        st.lists(st.tuples(prefix_strategy, st.integers()), max_size=30),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_matches_brute_force(self, entries, probe_value):
        """LPM lookup agrees with a brute-force longest-match scan."""
        trie = LpmTrie()
        table: dict[IPv4Prefix, int] = {}
        for prefix, value in entries:
            trie.insert(prefix, value)
            table[prefix] = value
        probe = IPv4Address(probe_value)
        expected = None
        for prefix, value in table.items():
            if prefix.contains(probe):
                if expected is None or prefix.length > expected[0].length:
                    expected = (prefix, value)
        assert trie.lookup(probe) == expected

    @settings(max_examples=50)
    @given(st.lists(prefix_strategy, max_size=30, unique=True))
    def test_insert_remove_roundtrip(self, prefixes):
        trie = LpmTrie()
        for prefix in prefixes:
            trie.insert(prefix, str(prefix))
        assert len(trie) == len(prefixes)
        for prefix in prefixes:
            assert trie.remove(prefix)
        assert len(trie) == 0

    @settings(max_examples=30)
    @given(st.lists(prefix_strategy, max_size=20, unique=True))
    def test_items_roundtrip(self, prefixes):
        trie = LpmTrie()
        for prefix in prefixes:
            trie.insert(prefix, prefix.length)
        assert sorted(p for p, _ in trie.items()) == sorted(prefixes)
