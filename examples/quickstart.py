#!/usr/bin/env python3
"""Quickstart: fail one CDN site and watch reactive-anycast recover it.

Builds the eight-site emulated CDN on a generated Internet topology,
deploys reactive-anycast with sea1 as the specific site, fails sea1, and
reports per-target reconnection/failover times -- the §5.2 experiment in
miniature.

Run:  python examples/quickstart.py
"""

from repro import (
    FailoverConfig,
    FailoverExperiment,
    ReactiveAnycast,
    build_deployment,
)
from repro.measurement.stats import summarize


def main() -> None:
    deployment = build_deployment()
    print(f"deployment: {len(deployment.site_names)} sites "
          f"({', '.join(deployment.site_names)}), "
          f"{len(deployment.topology.ases)} ASes")

    config = FailoverConfig(probe_duration=300.0, targets_per_site=20)
    experiment = FailoverExperiment(deployment.topology, deployment, config)

    technique = ReactiveAnycast()
    site = "sea1"
    print(f"\nfailing {site} under {technique.name} "
          f"(detection delay {config.detection_delay}s) ...")
    result = experiment.run_site(technique, site)

    print(f"targets selected: {len(result.selection.targets)} "
          f"(controllable pre-failure: {len(result.controllable)})")
    reconnection = summarize([o.reconnection_s for o in result.outcomes])
    failover = summarize([o.failover_s for o in result.outcomes])
    print(f"reconnection: {reconnection.row()}")
    print(f"failover:     {failover.row()}")

    landing = {}
    for outcome in result.outcomes:
        landing[outcome.final_site] = landing.get(outcome.final_site, 0) + 1
    print(f"targets now served by: {landing}")


if __name__ == "__main__":
    main()
