#!/usr/bin/env python3
"""Anycast agility: load shifting with prepending playbooks.

§4 lists load distribution among the control goals, and the related
work (Rizvi et al. 2022) precomputes "network playbooks" of announcement
configurations to shift anycast catchments under stress. This example:

1. precomputes drain plays (per-site prepending at 3 and 5);
2. simulates a hotspot at the busiest site and picks the best play;
3. shows the catchment before and after, plus hybrid DNS steering for
   clients whose latency the shift inflated.

Run:  python examples/anycast_agility.py
"""

from repro import build_deployment
from repro.core.playbook import Playbook
from repro.dns.hybrid import build_steering_plan
from repro.measurement.catchment import anycast_catchment
from repro.measurement.performance import SiteRttTable, analyze_performance


def main() -> None:
    deployment = build_deployment()
    topology = deployment.topology

    print("precomputing drain plays (prepend 3 and 5 per site) ...")
    playbook = Playbook(topology, deployment)
    playbook.build_drain_plays(prepend_levels=(0, 3, 5))
    baseline = playbook.baseline()

    hot_site = max(
        (site for site, _ in baseline.catchment),
        key=lambda s: baseline.load_share(s),
    )
    print("\nbaseline catchment shares:")
    for site, count in baseline.catchment:
        marker = "  <-- hotspot" if site == hot_site else ""
        print(f"  {site:6s} {baseline.load_share(site):6.1%} ({count} clients){marker}")

    play = playbook.best_drain(hot_site, max_overload=0.6)
    print(f"\nbest drain play for {hot_site}: prepends {dict(play.prepends)}")
    print("post-play shares:")
    for site, count in play.catchment:
        delta = play.load_share(site) - baseline.load_share(site)
        print(f"  {site:6s} {play.load_share(site):6.1%} ({delta:+.1%})")
    assert play.unrouted == 0, "no client may be blackholed by a play"

    # The shift costs some clients latency; steer the worst via DNS.
    table = SiteRttTable(topology, deployment)
    catchment = anycast_catchment(topology, deployment)
    report = analyze_performance(topology, deployment, catchment, table)
    plan = build_steering_plan(report, inflation_threshold_ms=10.0, max_clients=10)
    print(f"\nhybrid steering plan for the {len(plan)} worst-inflated clients:")
    for entry in plan[:5]:
        print(f"  {entry.client:18s} -> {entry.site} "
              f"(recovers {entry.anycast_inflation_ms:.1f} ms)")


if __name__ == "__main__":
    main()
