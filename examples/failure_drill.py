#!/usr/bin/env python3
"""Operational drills: pre-failure rotation testing and DNS exposure.

§4 recommends that a CDN running reactive-anycast "rotate through its
sites and withdraw a test prefix at the site to see if its clients are
routed as expected" before trusting the mechanism in production. This
example runs that rotation on a spare /24, then quantifies what the CDN
would be exposed to if it relied on DNS alone (the §2 unicast problem).

Run:  python examples/failure_drill.py
"""

from repro import ReactiveAnycast, Unicast, build_deployment
from repro.core.drill import RotationDrill
from repro.core.unicast_failover import UnicastFailoverConfig, simulate_unicast_failover
from repro.dns.client import TtlViolationModel


def main() -> None:
    deployment = build_deployment()
    clients = [
        info.node_id for info in deployment.topology.web_client_ases()
    ][:25]

    print("== rotation drill: reactive-anycast on the test prefix ==")
    drill = RotationDrill(
        deployment.topology, deployment, ReactiveAnycast(), deadline_s=120.0
    )
    for outcome in drill.run_rotation(clients):
        status = "PASS" if outcome.passed else f"FAIL ({outcome.stranded} stranded)"
        print(f"  {outcome.site:6s} recovered {outcome.recovered:3d}/{len(clients)}  {status}")
    print(f"  rotation verdict: {'all sites pass' if drill.all_passed() else 'FAILURES'}")

    print("\n== the same drill under plain unicast ==")
    unicast_drill = RotationDrill(
        deployment.topology, deployment, Unicast(), deadline_s=120.0
    )
    outcome = unicast_drill.run_site("sea1", clients)
    print(f"  sea1: {outcome.stranded}/{len(clients)} clients stranded "
          "(no BGP backup exists; only DNS can move them)")

    print("\n== DNS-only failover exposure ==")
    for label, ttl, violators in (
        ("20s TTL, compliant clients", 20.0, 0.0),
        ("20s TTL, 30% TTL violators", 20.0, 0.3),
        ("600s TTL, 30% TTL violators", 600.0, 0.3),
    ):
        result = simulate_unicast_failover(
            UnicastFailoverConfig(
                n_clients=400, ttl=ttl,
                violation=TtlViolationModel(violation_prob=violators),
                seed=2,
            )
        )
        print(f"  {label:30s} p50 {result.median():7.1f}s   "
              f"p90 {result.quantile(0.9):7.1f}s   p99 {result.quantile(0.99):8.1f}s")
    print("\npaper context: BGP-side techniques restore most clients in ~10s.")


if __name__ == "__main__":
    main()
