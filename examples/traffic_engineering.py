#!/usr/bin/env python3
"""Traffic engineering with proactive-prepending (Table 1 in miniature).

Shows the control side of the paper's trade-off:

1. measure the pure-anycast catchment of every site;
2. pick an intended site and measure how many nearby clients
   proactive-prepending can steer there with 3 and 5 prepends;
3. steer one client explicitly via the DNS mapping policy and verify the
   data plane delivers its traffic to the intended site.

Run:  python examples/traffic_engineering.py
"""

from collections import Counter

from repro import build_deployment
from repro.core.techniques import ProactivePrepending
from repro.dataplane.forwarding import ForwardingPlane
from repro.dns.authoritative import AuthoritativeServer, StaticMapping
from repro.measurement.catchment import anycast_catchment
from repro.measurement.control import measure_control
from repro.topology.testbed import SPECIFIC_PREFIX, SUPERPREFIX


def main() -> None:
    deployment = build_deployment()
    topology = deployment.topology

    print("== anycast catchments (web-client ASes per site) ==")
    catchment = anycast_catchment(topology, deployment)
    for site, count in Counter(catchment.values()).most_common():
        print(f"  {site:6s} {count}")

    intended = "msn"
    print(f"\n== prepending control for intended site {intended!r} ==")
    control = measure_control(topology, deployment, intended, catchment)
    print(f"  nearby targets: {control.nearby}")
    print(f"  not routed there by anycast: {control.not_routed_by_anycast:.0%}")
    for prepend, frac in control.controllable.items():
        print(f"  steerable with prepend-{prepend}: {frac:.0%}")

    print(f"\n== steering one client to {intended!r} ==")
    network = topology.build_network(seed=5)
    ProactivePrepending(3).announce_normal(
        network, deployment, intended, SPECIFIC_PREFIX, SUPERPREFIX
    )
    network.converge()

    # DNS side: the mapping policy hands this client an address in the
    # intended site's prefix.
    addresses = {site: SPECIFIC_PREFIX.address(10) for site in deployment.site_names}
    dns = AuthoritativeServer(
        "cdn.example", StaticMapping(default_site=intended), addresses, ttl=20.0
    )
    client_as = next(
        node for node, site in catchment.items() if site == intended
    )
    answer = dns.query("cdn.example", client_as, now=0.0)
    print(f"  client {client_as} resolves cdn.example -> {answer.address} (ttl {answer.ttl:.0f}s)")

    # Data-plane side: the client's packets toward that address land at
    # the intended site.
    plane = ForwardingPlane(network, topology)
    result = plane.snapshot_path(client_as, answer.address)
    landing = deployment.site_of_node(result.delivered_to)
    print(f"  data plane delivers to: {landing} via {' -> '.join(result.path)}")
    assert landing == intended


if __name__ == "__main__":
    main()
