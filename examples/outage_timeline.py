#!/usr/bin/env python3
"""Availability timelines through realistic outage episodes.

§3 frames availability as a budget ("a few minutes per month"). This
example replays three operational episodes against the serving-site
catchment and charts service availability over time for different
techniques:

1. clean failure + recovery of a site;
2. a rolling two-site regional outage;
3. a flapping site (fails and recovers twice).

Run:  python examples/outage_timeline.py
"""

from repro import Anycast, ReactiveAnycast, Unicast, build_deployment
from repro.core.scenarios import ScenarioRunner
from repro.measurement.catchment import anycast_catchment


def sparkline(values: list[float]) -> str:
    glyphs = " ._-=^#"
    return "".join(glyphs[min(len(glyphs) - 1, int(v * (len(glyphs) - 1)))] for v in values)


def run(deployment, technique, label, events, targets, site="sea1"):
    runner = ScenarioRunner(
        topology=deployment.topology,
        deployment=deployment,
        technique=technique,
        specific_site=site,
        duration_s=240.0,
        bucket_s=10.0,
        target_nodes=targets,
    )
    for at, kind, which in events:
        runner.add_event(at, kind, which)
    result = runner.run()
    availability = result.availability()
    print(f"  {label:20s} |{sparkline(availability)}| "
          f"mean {result.mean_availability():5.1%}  "
          f"downtime(<50%) {result.downtime_s():4.0f}s")


def main() -> None:
    deployment = build_deployment()
    catchment = anycast_catchment(deployment.topology, deployment)
    sea1_clients = [n for n, s in catchment.items() if s == "sea1"][:12]
    print(f"targets: {len(sea1_clients)} clients in sea1's catchment; "
          "one character per 10 s bucket\n")

    print("episode 1: sea1 fails at t=60, recovers at t=150")
    events = [(60.0, "fail", "sea1"), (150.0, "recover", "sea1")]
    for technique, label in (
        (Unicast(), "unicast (no DNS)"),
        (Anycast(), "anycast"),
        (ReactiveAnycast(), "reactive-anycast"),
    ):
        run(deployment, technique, label, events, sea1_clients)

    print("\nepisode 2: rolling outage, sea1 at t=60 then sea2 at t=90")
    events = [(60.0, "fail", "sea1"), (90.0, "fail", "sea2")]
    for technique, label in ((Anycast(), "anycast"), (ReactiveAnycast(), "reactive-anycast")):
        run(deployment, technique, label, events, sea1_clients)

    print("\nepisode 3: sea1 flaps (fail 60, up 110, fail 160, up 200)")
    events = [
        (60.0, "fail", "sea1"), (110.0, "recover", "sea1"),
        (160.0, "fail", "sea1"), (200.0, "recover", "sea1"),
    ]
    for technique, label in ((Anycast(), "anycast"), (ReactiveAnycast(), "reactive-anycast")):
        run(deployment, technique, label, events, sea1_clients)


if __name__ == "__main__":
    main()
