#!/usr/bin/env python3
"""Compare every redirection technique's failover behaviour (Figure 2).

Fails four sites under each technique and prints the reconnection and
failover distributions side by side, plus the DNS-bound unicast baseline
the paper argues about in §2. This is the motivating experiment of the
paper: anycast-grade availability with unicast-grade control.

Run:  python examples/failover_comparison.py
"""

from repro import (
    Anycast,
    Combined,
    FailoverConfig,
    FailoverExperiment,
    ProactivePrepending,
    ProactiveSuperprefix,
    ReactiveAnycast,
    build_deployment,
)
from repro.core.experiment import pooled_outcomes
from repro.core.unicast_failover import UnicastFailoverConfig, simulate_unicast_failover
from repro.measurement.stats import Cdf

SITES = ["sea1", "ams", "msn", "slc"]


def main() -> None:
    deployment = build_deployment()
    config = FailoverConfig(probe_duration=400.0, targets_per_site=15)
    experiment = FailoverExperiment(deployment.topology, deployment, config)

    techniques = [
        Anycast(),
        ReactiveAnycast(),
        ProactivePrepending(3),
        ProactiveSuperprefix(),
        Combined(),
    ]
    print(f"{'technique':28s} {'n':>4s} {'recon p50':>10s} {'fo p50':>8s} {'fo p90':>8s}")
    for technique in techniques:
        outcomes = pooled_outcomes(experiment.run_all_sites(technique, SITES))
        recon = Cdf.from_optional([o.reconnection_s for o in outcomes])
        failover = Cdf.from_optional([o.failover_s for o in outcomes])
        print(
            f"{technique.name:28s} {recon.n:4d} {recon.median():9.1f}s "
            f"{failover.median():7.1f}s {failover.quantile(0.9):7.1f}s"
        )

    # The unicast baseline is DNS-bound: simulate the client population.
    unicast = simulate_unicast_failover(
        UnicastFailoverConfig(n_clients=400, ttl=20.0, seed=1)
    )
    print(
        f"{'unicast (DNS, 20s TTL)':28s} {len(unicast.switch_delays):4d} "
        f"{'-':>10s} {unicast.median():7.1f}s {unicast.quantile(0.9):7.1f}s"
    )
    print("\npaper shape: anycast ≈ reactive-anycast ≈ 10s; prepending a few "
          "seconds slower; superprefix ~100s; unicast tail unbounded by BGP.")


if __name__ == "__main__":
    main()
